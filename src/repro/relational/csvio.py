"""CSV persistence: a database saves as one CSV per table plus schema.json.

Loading is strict by default — any malformed row fails the whole load
with the table, row number, and column named in the error.  Pass
``lenient=True`` to quarantine malformed rows instead: each bad row is
dropped, counted per table, and reported once per table at WARNING
level, so a mostly-good export still loads.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List, Optional

from repro.obs import get_logger, get_registry
from repro.relational.column import Column
from repro.relational.database import Database
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.relational.types import DType
from repro.resilience.faults import fault_point

__all__ = ["save_database", "load_database", "MalformedRowError"]

_SCHEMA_FILE = "schema.json"
_NULL_TOKEN = ""

_log = get_logger("relational.csvio")


class MalformedRowError(ValueError):
    """A CSV row failed to parse against the table schema (strict mode)."""

    def __init__(self, table: str, row_number: int, column: Optional[str], detail: str) -> None:
        where = f"table {table!r}, row {row_number}"
        if column is not None:
            where += f", column {column!r}"
        super().__init__(f"{where}: {detail} (pass lenient=True to quarantine bad rows)")
        self.table = table
        self.row_number = row_number
        self.column = column


def save_database(db: Database, directory: str) -> None:
    """Write ``db`` to ``directory`` (created if missing).

    Layout: ``schema.json`` with the database name and all table
    schemas, plus ``<table>.csv`` per table.  Nulls serialize as empty
    fields.
    """
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "name": db.name,
        "tables": [table.schema.to_dict() for table in db],
    }
    with open(os.path.join(directory, _SCHEMA_FILE), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    for table in db:
        _save_table(table, os.path.join(directory, f"{table.name}.csv"))


def _save_table(table: Table, path: str) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        columns = [table[name] for name in table.column_names]
        for i in range(table.num_rows):
            writer.writerow(
                [_serialize(col.get(i), col.dtype) for col in columns]
            )


def _serialize(value, dtype: DType) -> str:
    if value is None:
        return _NULL_TOKEN
    if dtype == DType.BOOL:
        return "true" if value else "false"
    if dtype == DType.FLOAT64:
        return repr(float(value))
    return str(value)


def load_database(directory: str, lenient: bool = False) -> Database:
    """Load a database previously written by :func:`save_database`.

    Parameters
    ----------
    lenient:
        When False (default), the first malformed row raises
        :class:`MalformedRowError` naming the table, row, and column.
        When True, malformed rows are quarantined (dropped) with one
        WARNING per affected table; quarantine totals are recorded in
        the ``csv.quarantined_rows`` metric.
    """
    fault_point("csv.load")
    with open(os.path.join(directory, _SCHEMA_FILE), "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    db = Database(name=manifest["name"])
    for schema_dict in manifest["tables"]:
        schema = TableSchema.from_dict(schema_dict)
        db.add_table(
            _load_table(schema, os.path.join(directory, f"{schema.name}.csv"), lenient=lenient)
        )
    return db


def _load_table(schema: TableSchema, path: str, lenient: bool = False) -> Table:
    dtypes = [schema.dtype_of(name) for name in schema.column_names]
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != schema.column_names:
            raise ValueError(
                f"CSV header of {path!r} does not match schema: {header} != {schema.column_names}"
            )
        parsed: Dict[str, List] = {name: [] for name in header}
        quarantined = 0
        # Row-wise parse so one bad row can be pinpointed (strict) or
        # dropped without poisoning its columns (lenient).
        for row_number, row in enumerate(reader, start=2):
            try:
                values = _parse_row(schema.name, row_number, header, dtypes, row)
            except MalformedRowError:
                if not lenient:
                    raise
                quarantined += 1
                continue
            for name, value in zip(header, values):
                parsed[name].append(value)
    if quarantined:
        get_registry().counter("csv.quarantined_rows").inc(quarantined)
        _log.warning(
            "quarantined malformed rows",
            extra={"table": schema.name, "quarantined": quarantined,
                   "kept": len(parsed[header[0]]) if header else 0},
        )
    columns = {
        name: Column(parsed[name], dtype) for name, dtype in zip(header, dtypes)
    }
    return Table(schema, columns)


def _parse_row(table: str, row_number: int, header: List[str], dtypes: List[DType], row: List[str]):
    if len(row) != len(header):
        raise MalformedRowError(
            table, row_number, None,
            f"expected {len(header)} fields, got {len(row)}",
        )
    values = []
    for name, dtype, cell in zip(header, dtypes, row):
        if cell == _NULL_TOKEN and dtype != DType.STRING:
            values.append(None)
            continue
        try:
            values.append(_parse(cell, dtype))
        except (ValueError, OverflowError) as err:
            raise MalformedRowError(
                table, row_number, name,
                f"cannot parse {cell!r} as {dtype.value}: {err}",
            ) from err
    return values


def _parse(cell: str, dtype: DType):
    if dtype == DType.STRING:
        return cell
    if dtype == DType.BOOL:
        return cell.strip().lower() in ("1", "true", "t", "yes")
    if dtype == DType.FLOAT64:
        return float(cell)
    return int(float(cell))
