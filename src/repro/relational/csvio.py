"""CSV persistence: a database saves as one CSV per table plus schema.json."""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List

from repro.relational.column import Column
from repro.relational.database import Database
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.relational.types import DType

__all__ = ["save_database", "load_database"]

_SCHEMA_FILE = "schema.json"
_NULL_TOKEN = ""


def save_database(db: Database, directory: str) -> None:
    """Write ``db`` to ``directory`` (created if missing).

    Layout: ``schema.json`` with the database name and all table
    schemas, plus ``<table>.csv`` per table.  Nulls serialize as empty
    fields.
    """
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "name": db.name,
        "tables": [table.schema.to_dict() for table in db],
    }
    with open(os.path.join(directory, _SCHEMA_FILE), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    for table in db:
        _save_table(table, os.path.join(directory, f"{table.name}.csv"))


def _save_table(table: Table, path: str) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        columns = [table[name] for name in table.column_names]
        for i in range(table.num_rows):
            writer.writerow(
                [_serialize(col.get(i), col.dtype) for col in columns]
            )


def _serialize(value, dtype: DType) -> str:
    if value is None:
        return _NULL_TOKEN
    if dtype == DType.BOOL:
        return "true" if value else "false"
    if dtype == DType.FLOAT64:
        return repr(float(value))
    return str(value)


def load_database(directory: str) -> Database:
    """Load a database previously written by :func:`save_database`."""
    with open(os.path.join(directory, _SCHEMA_FILE), "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    db = Database(name=manifest["name"])
    for schema_dict in manifest["tables"]:
        schema = TableSchema.from_dict(schema_dict)
        db.add_table(_load_table(schema, os.path.join(directory, f"{schema.name}.csv")))
    return db


def _load_table(schema: TableSchema, path: str) -> Table:
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != schema.column_names:
            raise ValueError(
                f"CSV header of {path!r} does not match schema: {header} != {schema.column_names}"
            )
        raw: Dict[str, List] = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                raw[name].append(cell)
    columns = {
        name: _parse_column(raw[name], schema.dtype_of(name)) for name in header
    }
    return Table(schema, columns)


def _parse_column(cells: List[str], dtype: DType) -> Column:
    values = [None if cell == _NULL_TOKEN and dtype != DType.STRING else _parse(cell, dtype) for cell in cells]
    return Column(values, dtype)


def _parse(cell: str, dtype: DType):
    if dtype == DType.STRING:
        return cell
    if dtype == DType.BOOL:
        return cell.strip().lower() in ("1", "true", "t", "yes")
    if dtype == DType.FLOAT64:
        return float(cell)
    return int(float(cell))
