"""A small SQL SELECT dialect over the relational engine.

Supported grammar (keywords case-insensitive)::

    SELECT <item> [, <item>]*
    FROM <table>
    [JOIN <table> ON <table>.<col> = <table>.<col>]*
    [WHERE <cond> [AND <cond>]*]
    [GROUP BY <col>]
    [ORDER BY <col> [ASC|DESC]]
    [LIMIT <n>]

    <item> := <col> | <col> AS <name>
            | (COUNT(*) | COUNT|SUM|AVG|MIN|MAX(<col>)) [AS <name>]
    <cond> := <col> (= | != | < | <= | > | >=) <literal>
            | <col> IS [NOT] NULL

Column references may be qualified (``table.col``); after a join,
collided right-side columns follow the engine's ``_right`` suffix
convention.  This is deliberately the subset the predictive-query
workload needs — selections, equi-joins, filters, and group
aggregates — implemented completely rather than a partial sketch of
full SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.obs import trace as obs_trace
from repro.relational import algebra
from repro.relational.column import Column
from repro.relational.database import Database
from repro.relational.schema import ColumnSpec, TableSchema
from repro.relational.table import Table
from repro.relational.types import DType

__all__ = ["execute_sql", "SQLError"]

_KEYWORDS = {
    "SELECT", "FROM", "JOIN", "ON", "WHERE", "AND", "GROUP", "ORDER", "BY",
    "LIMIT", "AS", "ASC", "DESC", "COUNT", "SUM", "AVG", "MIN", "MAX",
    "IS", "NOT", "NULL", "TRUE", "FALSE", "DISTINCT", "HAVING",
}
_AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_OPERATORS = {"=", "!=", "<", "<=", ">", ">="}


class SQLError(ValueError):
    """Raised on SQL syntax or semantic errors."""


@dataclass(frozen=True)
class _Token:
    kind: str  # KW, IDENT, NUM, STR, OP, PUNCT, EOF
    value: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    i, n = 0, len(text)
    while i < n:
        char = text[i]
        if char.isspace():
            i += 1
        elif char in "(),*.":
            tokens.append(_Token("PUNCT", char, i))
            i += 1
        elif char in "<>!=":
            two = text[i : i + 2]
            if two in _OPERATORS:
                tokens.append(_Token("OP", two, i))
                i += 2
            elif char in _OPERATORS:
                tokens.append(_Token("OP", char, i))
                i += 1
            else:
                raise SQLError(f"unexpected character {char!r} at {i}")
        elif char == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SQLError(f"unterminated string at {i}")
            tokens.append(_Token("STR", text[i + 1 : end], i))
            i = end + 1
        elif char.isdigit() or (char == "-" and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            tokens.append(_Token("NUM", text[start:i], start))
        elif char.isalpha() or char == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in _KEYWORDS:
                tokens.append(_Token("KW", word.upper(), start))
            else:
                tokens.append(_Token("IDENT", word, start))
        else:
            raise SQLError(f"unexpected character {char!r} at {i}")
    tokens.append(_Token("EOF", "", n))
    return tokens


@dataclass
class _SelectItem:
    agg: Optional[str]  # None for plain columns; "count_star" for COUNT(*)
    column: Optional[str]
    alias: Optional[str]


@dataclass
class _JoinClause:
    table: str
    left_col: str
    right_col: str


@dataclass
class _WhereClause:
    column: str
    op: str
    literal: object


@dataclass
class _Query:
    items: List[_SelectItem]
    table: str
    joins: List[_JoinClause]
    where: List[_WhereClause]
    group_by: Optional[str]
    order_by: Optional[Tuple[str, bool]]  # (column, ascending)
    limit: Optional[int]
    distinct: bool = False
    having: List[_WhereClause] = None


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            raise SQLError(f"expected {value or kind} at {token.position}, got {token.value!r}")
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def parse(self) -> _Query:
        self.expect("KW", "SELECT")
        distinct = self.accept("KW", "DISTINCT") is not None
        items = [self._select_item()]
        while self.accept("PUNCT", ","):
            items.append(self._select_item())
        self.expect("KW", "FROM")
        table = self.expect("IDENT").value
        joins = []
        while self.accept("KW", "JOIN"):
            joins.append(self._join())
        where = []
        if self.accept("KW", "WHERE"):
            where.append(self._condition())
            while self.accept("KW", "AND"):
                where.append(self._condition())
        group_by = None
        if self.accept("KW", "GROUP"):
            self.expect("KW", "BY")
            group_by = self._column_ref()
        having = []
        if self.accept("KW", "HAVING"):
            if group_by is None:
                raise SQLError("HAVING requires GROUP BY")
            having.append(self._condition())
            while self.accept("KW", "AND"):
                having.append(self._condition())
        order_by = None
        if self.accept("KW", "ORDER"):
            self.expect("KW", "BY")
            column = self._column_ref()
            ascending = True
            if self.accept("KW", "DESC"):
                ascending = False
            else:
                self.accept("KW", "ASC")
            order_by = (column, ascending)
        limit = None
        if self.accept("KW", "LIMIT"):
            limit = int(self.expect("NUM").value)
        self.expect("EOF")
        return _Query(
            items, table, joins, where, group_by, order_by, limit,
            distinct=distinct, having=having,
        )

    def _column_ref(self) -> str:
        first = self.expect("IDENT").value
        if self.accept("PUNCT", "."):
            second = self.expect("IDENT").value
            return f"{first}.{second}"
        return first

    def _select_item(self) -> _SelectItem:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "*":
            self.advance()
            return _SelectItem(agg=None, column="*", alias=None)
        if token.kind == "KW" and token.value in _AGG_FUNCS:
            func = self.advance().value
            self.expect("PUNCT", "(")
            if func == "COUNT" and self.accept("PUNCT", "*"):
                self.expect("PUNCT", ")")
                alias = self._alias()
                return _SelectItem(agg="count_star", column=None, alias=alias)
            column = self._column_ref()
            self.expect("PUNCT", ")")
            return _SelectItem(agg=func.lower(), column=column, alias=self._alias())
        column = self._column_ref()
        return _SelectItem(agg=None, column=column, alias=self._alias())

    def _alias(self) -> Optional[str]:
        if self.accept("KW", "AS"):
            return self.expect("IDENT").value
        return None

    def _join(self) -> _JoinClause:
        table = self.expect("IDENT").value
        self.expect("KW", "ON")
        left = self._column_ref()
        self.expect("OP", "=")
        right = self._column_ref()
        return _JoinClause(table=table, left_col=left, right_col=right)

    def _condition(self) -> _WhereClause:
        column = self._column_ref()
        if self.accept("KW", "IS"):
            negated = self.accept("KW", "NOT") is not None
            self.expect("KW", "NULL")
            return _WhereClause(column, "is_not_null" if negated else "is_null", None)
        op = self.expect("OP").value
        token = self.peek()
        if token.kind == "NUM":
            self.advance()
            value = float(token.value)
            literal: object = int(value) if value.is_integer() else value
        elif token.kind == "STR":
            self.advance()
            literal = token.value
        elif token.kind == "KW" and token.value in ("TRUE", "FALSE"):
            self.advance()
            literal = token.value == "TRUE"
        else:
            raise SQLError(f"expected a literal at {token.position}, got {token.value!r}")
        return _WhereClause(column, op, literal)


def _resolve(table: Table, ref: str, base_name: str) -> str:
    """Map a possibly-qualified column reference onto the working table."""
    if "." not in ref:
        if ref in table:
            return ref
        raise SQLError(f"unknown column {ref!r}")
    qualifier, column = ref.split(".", 1)
    # After a join, right-side duplicates carry the _right suffix.
    if qualifier != base_name and f"{column}_right" in table:
        return f"{column}_right"
    if column in table:
        return column
    raise SQLError(f"unknown column {ref!r}")


def _apply_where(table: Table, clause: _WhereClause, base_name: str) -> Table:
    column = table[_resolve(table, clause.column, base_name)]
    if clause.op == "is_null":
        return table.filter(column.null_mask())
    if clause.op == "is_not_null":
        return table.filter(~column.null_mask())
    ops = {
        "=": column.equals,
        "!=": column.not_equals,
        "<": column.less_than,
        "<=": column.less_equal,
        ">": column.greater_than,
        ">=": column.greater_equal,
    }
    return table.filter(ops[clause.op](clause.literal))


def execute_sql(db: Database, sql: str) -> Table:
    """Execute a SELECT statement against ``db``; returns a result table."""
    with obs_trace.span("sql.execute") as sql_span:
        query = _Parser(sql).parse()
        if query.table not in db:
            raise SQLError(f"unknown table {query.table!r}")
        working = db[query.table]
        base_name = query.table
        rows_scanned = working.num_rows
        rows_joined = 0

        for join in query.joins:
            if join.table not in db:
                raise SQLError(f"unknown table {join.table!r}")
            left_col = _resolve(working, join.left_col, base_name)
            right_table = db[join.table]
            right_col = join.right_col.split(".", 1)[-1]
            if not right_table.schema.has_column(right_col):
                raise SQLError(f"unknown column {join.right_col!r}")
            rows_scanned += right_table.num_rows
            working = algebra.inner_join(working, right_table, left_col, right_col)
            rows_joined += working.num_rows

        for clause in query.where:
            working = _apply_where(working, clause, base_name)

        has_aggs = any(item.agg is not None for item in query.items)
        if query.group_by is not None or has_aggs:
            working = _execute_aggregation(working, query, base_name)
            for clause in query.having or []:
                # HAVING conditions reference the aggregate output columns.
                working = _apply_where(working, clause, working.name)
            working = _order_and_limit(working, query, base_name)
            _record_sql_counters(sql_span, rows_scanned, rows_joined, working)
            return working

        # Plain select: ORDER BY / LIMIT run before projection so sorting
        # by a non-selected column works (standard SQL semantics).
        working = _order_and_limit(working, query, base_name)
        if not any(item.column == "*" for item in query.items):
            columns = {}
            specs = []
            for item in query.items:
                resolved = _resolve(working, item.column, base_name)
                name = item.alias or resolved
                if name in columns:
                    raise SQLError(f"duplicate output column {name!r}")
                columns[name] = working[resolved]
                specs.append(ColumnSpec(name, working.schema.dtype_of(resolved)))
            working = Table(TableSchema(name=working.name, columns=specs), columns)
        if query.distinct:
            working = _distinct_rows(working)
        _record_sql_counters(sql_span, rows_scanned, rows_joined, working)
        return working


def _record_sql_counters(sql_span, rows_scanned: int, rows_joined: int, result: Table) -> None:
    """Attach scan/join/output row counts to the ``sql.execute`` span."""
    if not obs_trace.enabled():
        return
    sql_span.add_counter("sql.rows_scanned", rows_scanned)
    sql_span.add_counter("sql.rows_joined", rows_joined)
    sql_span.add_counter("sql.rows_returned", result.num_rows)


def _distinct_rows(table: Table) -> Table:
    """Keep the first occurrence of each distinct row (order-stable)."""
    seen = set()
    keep = np.zeros(table.num_rows, dtype=bool)
    columns = [table[name] for name in table.column_names]
    for i in range(table.num_rows):
        key = tuple(col.get(i) for col in columns)
        if key not in seen:
            seen.add(key)
            keep[i] = True
    return table.filter(keep)


def _order_and_limit(working: Table, query: _Query, base_name: str) -> Table:
    if query.order_by is not None:
        column, ascending = query.order_by
        resolved = column if column in working else _resolve(working, column, base_name)
        working = working.sort_by(resolved, ascending=ascending)
    if query.limit is not None:
        working = working.head(query.limit)
    return working


def _rename_column(table: Table, old: str, new: str) -> Table:
    specs = [
        ColumnSpec(new if spec.name == old else spec.name, spec.dtype)
        for spec in table.schema.columns
    ]
    schema = TableSchema(name=table.name, columns=specs)
    columns = {new if name == old else name: table[name] for name in table.column_names}
    return Table(schema, columns)


def _execute_aggregation(working: Table, query: _Query, base_name: str) -> Table:
    aggs = {}
    plain_columns = []
    for index, item in enumerate(query.items):
        if item.agg is None:
            if item.column == "*":
                raise SQLError("SELECT * cannot be combined with aggregates")
            plain_columns.append(item)
            continue
        if item.agg == "count_star":
            name = item.alias or "count"
            aggs[name] = ("count", None)
        else:
            resolved = _resolve(working, item.column, base_name)
            name = item.alias or f"{item.agg}_{resolved}"
            aggs[name] = (item.agg, resolved)
    if query.group_by is None:
        # Global aggregate: group by a synthetic constant key.
        constant = Column(np.zeros(working.num_rows, dtype=np.int64), DType.INT64)
        working = working.with_column("__group__", constant)
        if plain_columns:
            raise SQLError("non-aggregated columns require GROUP BY")
        result = algebra.group_aggregate(working, "__group__", aggs)
        if result.num_rows == 0:
            # Aggregates over an empty input still yield one row.
            data = {"__group__": [0]}
            for name, (func, _) in aggs.items():
                data[name] = [0.0 if func in ("count", "sum", "exists") else None]
            result = Table.from_dict(result.schema, data)
        return result.project(list(aggs))
    group_col = _resolve(working, query.group_by, base_name)
    for item in plain_columns:
        resolved = _resolve(working, item.column, base_name)
        if resolved != group_col:
            raise SQLError(
                f"column {item.column!r} must appear in GROUP BY or inside an aggregate"
            )
    result = algebra.group_aggregate(working, group_col, aggs)
    return result
