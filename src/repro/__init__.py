"""repro — Databases as graphs: predictive queries for declarative ML.

A from-scratch reproduction of the PODS 2023 keynote vision (Jure
Leskovec, "Databases as Graphs: Predictive Queries for Declarative
Machine Learning"), later realized as RelBench / Relational Deep
Learning.

The sixty-second tour::

    from repro.datasets import make_ecommerce
    from repro.eval import make_temporal_split
    from repro.pql import PredictiveQueryPlanner

    db = make_ecommerce()                           # a relational database
    span = db.time_span()
    split = make_temporal_split(span[0], span[1], horizon_seconds=30 * 86400)

    planner = PredictiveQueryPlanner(db)
    model = planner.fit(
        "PREDICT COUNT(orders) > 0 FOR EACH customers.id "
        "ASSUMING HORIZON 30 DAYS",
        split,
    )
    print(model.evaluate(split.test_cutoff))        # {'auroc': ..., ...}

Sub-packages:

======================  ====================================================
``repro.relational``    typed column store, schemas, relational algebra
``repro.pql``           the Predictive Query Language and its compiler
``repro.graph``         DB→heterogeneous-temporal-graph compiler + sampler
``repro.nn``            numpy autograd, layers, losses, optimizers
``repro.gnn``           heterogeneous GNNs and trainers
``repro.baselines``     manual features, GBDT, linear models, heuristics
``repro.datasets``      synthetic relational datasets with planted signal
``repro.eval``          metrics and temporal splits
======================  ====================================================
"""

__version__ = "1.0.0"

from repro.relational import Database, Table, TableSchema, ColumnSpec, ForeignKey, DType
from repro.pql import PlannerConfig, PredictiveQueryPlanner, parse
from repro.eval import make_temporal_split

__all__ = [
    "Database",
    "Table",
    "TableSchema",
    "ColumnSpec",
    "ForeignKey",
    "DType",
    "PredictiveQueryPlanner",
    "PlannerConfig",
    "parse",
    "make_temporal_split",
    "__version__",
]
