"""Temporal train/validation/test splits.

Predictive queries are evaluated *forward in time*: training cutoffs
precede the validation cutoff, which precedes the test cutoff, and
every label window must close before the next split begins.  This
mirrors RelBench's split protocol and is what makes the reported
numbers honest — a random row split would leak future facts into
training neighborhoods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["TemporalSplit", "make_temporal_split"]


@dataclass(frozen=True)
class TemporalSplit:
    """Cutoff schedule for one task.

    ``train_cutoffs`` may contain several timestamps (each yields one
    labeled snapshot per entity); validation and test are single
    cutoffs.
    """

    train_cutoffs: Tuple[int, ...]
    val_cutoff: int
    test_cutoff: int

    def __post_init__(self) -> None:
        if not self.train_cutoffs:
            raise ValueError("need at least one training cutoff")
        if max(self.train_cutoffs) >= self.val_cutoff:
            raise ValueError("validation cutoff must follow all training cutoffs")
        if self.val_cutoff >= self.test_cutoff:
            raise ValueError("test cutoff must follow the validation cutoff")


def make_temporal_split(
    start: int,
    end: int,
    horizon_seconds: int,
    num_train_cutoffs: int = 3,
) -> TemporalSplit:
    """Lay out cutoffs over the data's time span.

    The test cutoff is placed so its label window ``(test, test +
    horizon]`` still fits inside ``end``; validation one horizon
    earlier; training cutoffs are spaced one horizon apart before that.
    Raises if the span is too short for the requested schedule.
    """
    if num_train_cutoffs < 1:
        raise ValueError("num_train_cutoffs must be >= 1")
    test_cutoff = end - horizon_seconds
    val_cutoff = test_cutoff - horizon_seconds
    first_train = val_cutoff - horizon_seconds * num_train_cutoffs
    if first_train <= start:
        raise ValueError(
            f"time span [{start}, {end}] too short for {num_train_cutoffs} train cutoffs "
            f"with horizon {horizon_seconds}"
        )
    train_cutoffs = tuple(
        val_cutoff - horizon_seconds * (num_train_cutoffs - i) for i in range(num_train_cutoffs)
    )
    return TemporalSplit(train_cutoffs=train_cutoffs, val_cutoff=val_cutoff, test_cutoff=test_cutoff)
