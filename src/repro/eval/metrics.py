"""Evaluation metrics for classification, regression, and ranking.

All functions take plain numpy arrays and return python floats.
Classification metrics take scores (probabilities or logits — only the
ordering matters for ranking metrics like AUROC).

Score-based binary metrics refuse non-finite scores: NaN sorts
unpredictably, so a single NaN score would silently corrupt the rank
ordering behind AUROC/AP and the binning behind ECE.  They return NaN
and log one warning instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs import get_logger

_log = get_logger("eval.metrics")

__all__ = [
    "auroc",
    "average_precision",
    "accuracy",
    "f1_score",
    "mae",
    "rmse",
    "r2_score",
    "mrr",
    "ndcg_at_k",
    "hit_rate_at_k",
    "brier_score",
    "expected_calibration_error",
]


def _binary_checked(y_true: np.ndarray, y_score: np.ndarray):
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_score = np.asarray(y_score, dtype=np.float64).reshape(-1)
    if y_true.shape != y_score.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_score.shape}")
    return y_true, y_score


def _scores_unusable(y_score: np.ndarray, metric: str) -> bool:
    """True (with one WARNING) when non-finite scores would corrupt ``metric``."""
    bad = int((~np.isfinite(y_score)).sum())
    if bad:
        _log.warning(
            "non-finite scores; returning NaN",
            extra={"metric": metric, "bad_scores": bad, "total": len(y_score)},
        )
        return True
    return False


def auroc(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) formula.

    Ties in scores receive mid-ranks.  Returns NaN if only one class is
    present.
    """
    y_true, y_score = _binary_checked(y_true, y_score)
    if _scores_unusable(y_score, "auroc"):
        return float("nan")
    positives = y_true > 0.5
    n_pos = int(positives.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(y_score, kind="stable")
    ranks = np.empty(len(y_score), dtype=np.float64)
    sorted_scores = y_score[order]
    # Mid-ranks for ties.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[positives].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def average_precision(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve)."""
    y_true, y_score = _binary_checked(y_true, y_score)
    if _scores_unusable(y_score, "average_precision"):
        return float("nan")
    n_pos = int((y_true > 0.5).sum())
    if n_pos == 0:
        return float("nan")
    order = np.argsort(-y_score, kind="stable")
    sorted_true = y_true[order] > 0.5
    cum_pos = np.cumsum(sorted_true)
    precision = cum_pos / np.arange(1, len(sorted_true) + 1)
    return float((precision * sorted_true).sum() / n_pos)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if len(y_true) == 0:
        return float("nan")
    return float((y_true == y_pred).mean())


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Binary F1 (positive class = 1); 0 when there are no predicted or true positives."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1) > 0.5
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1) > 0.5
    tp = float((y_true & y_pred).sum())
    fp = float((~y_true & y_pred).sum())
    fn = float((y_true & ~y_pred).sum())
    denom = 2 * tp + fp + fn
    return float(2 * tp / denom) if denom > 0 else 0.0


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    return float(np.abs(y_true - y_pred).mean())


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    return float(np.sqrt(((y_true - y_pred) ** 2).mean()))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; NaN for constant targets."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    total = float(((y_true - y_true.mean()) ** 2).sum())
    if total == 0:
        return float("nan")
    residual = float(((y_true - y_pred) ** 2).sum())
    return float(1.0 - residual / total)


def _rank_of_first_relevant(scores: np.ndarray, relevant: np.ndarray) -> int:
    """1-based rank of the best-scored relevant item (0 if none)."""
    if not relevant.any():
        return 0
    order = np.argsort(-scores, kind="stable")
    positions = np.flatnonzero(relevant[order])
    return int(positions[0]) + 1


def mrr(score_lists: Sequence[np.ndarray], relevance_lists: Sequence[np.ndarray]) -> float:
    """Mean reciprocal rank over queries.

    Each query has a score array over its candidates and a boolean
    relevance array of equal length.  Queries with no relevant
    candidate contribute 0.
    """
    if len(score_lists) != len(relevance_lists):
        raise ValueError("score and relevance lists must have equal length")
    if len(score_lists) == 0:
        return float("nan")
    total = 0.0
    for scores, relevant in zip(score_lists, relevance_lists):
        rank = _rank_of_first_relevant(np.asarray(scores), np.asarray(relevant, dtype=bool))
        total += 1.0 / rank if rank > 0 else 0.0
    return float(total / len(score_lists))


def hit_rate_at_k(
    score_lists: Sequence[np.ndarray], relevance_lists: Sequence[np.ndarray], k: int
) -> float:
    """Fraction of queries with a relevant item in the top k."""
    if len(score_lists) == 0:
        return float("nan")
    hits = 0
    for scores, relevant in zip(score_lists, relevance_lists):
        scores = np.asarray(scores)
        relevant = np.asarray(relevant, dtype=bool)
        top = np.argsort(-scores, kind="stable")[:k]
        hits += int(relevant[top].any())
    return float(hits / len(score_lists))


def ndcg_at_k(
    score_lists: Sequence[np.ndarray], relevance_lists: Sequence[np.ndarray], k: int
) -> float:
    """Normalized discounted cumulative gain at k (binary relevance)."""
    if len(score_lists) == 0:
        return float("nan")
    total = 0.0
    for scores, relevant in zip(score_lists, relevance_lists):
        scores = np.asarray(scores)
        relevant = np.asarray(relevant, dtype=np.float64)
        top = np.argsort(-scores, kind="stable")[:k]
        gains = relevant[top] / np.log2(np.arange(2, len(top) + 2))
        ideal_count = min(int((relevant > 0).sum()), k)
        if ideal_count == 0:
            continue
        ideal = (1.0 / np.log2(np.arange(2, ideal_count + 2))).sum()
        total += float(gains.sum() / ideal)
    return float(total / len(score_lists))


def brier_score(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Mean squared error of predicted probabilities (lower is better)."""
    y_true, y_prob = _binary_checked(y_true, y_prob)
    if len(y_true) == 0 or _scores_unusable(y_prob, "brier_score"):
        return float("nan")
    return float(((y_prob - y_true) ** 2).mean())


def expected_calibration_error(
    y_true: np.ndarray, y_prob: np.ndarray, num_bins: int = 10
) -> float:
    """ECE: confidence-weighted gap between predicted and empirical rates.

    Probabilities are bucketed into ``num_bins`` equal-width bins; the
    score is the bin-size-weighted mean |accuracy − confidence|.
    """
    y_true, y_prob = _binary_checked(y_true, y_prob)
    if len(y_true) == 0 or _scores_unusable(y_prob, "expected_calibration_error"):
        return float("nan")
    bins = np.clip((y_prob * num_bins).astype(int), 0, num_bins - 1)
    total = 0.0
    for b in range(num_bins):
        mask = bins == b
        if not mask.any():
            continue
        confidence = y_prob[mask].mean()
        empirical = y_true[mask].mean()
        total += mask.sum() * abs(confidence - empirical)
    return float(total / len(y_true))
