"""Evaluation: metrics, temporal splits, and the experiment protocol."""

from repro.eval.metrics import (
    accuracy,
    brier_score,
    expected_calibration_error,
    average_precision,
    auroc,
    f1_score,
    hit_rate_at_k,
    mae,
    mrr,
    ndcg_at_k,
    r2_score,
    rmse,
)
from repro.eval.splits import TemporalSplit, make_temporal_split

__all__ = [
    "auroc",
    "average_precision",
    "accuracy",
    "brier_score",
    "expected_calibration_error",
    "f1_score",
    "mae",
    "rmse",
    "r2_score",
    "mrr",
    "ndcg_at_k",
    "hit_rate_at_k",
    "TemporalSplit",
    "make_temporal_split",
]
