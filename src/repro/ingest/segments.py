"""Crash-safe, time-partitioned segment log for ingest events.

Layout under the log root::

    MANIFEST.json              the single commit point (atomic rename)
    base-000/                  full database snapshot (CSV + schema)
    segments/
      seg-<partition>-<seq>.jsonl   committed event batches

``MANIFEST.json`` names the current base snapshot and the committed
segment files in apply order.  Every mutation follows the same
protocol: write new files (temp + fsync + rename), then commit the
manifest atomically.  A crash at any point leaves either the old
manifest (new files are orphans, deleted on reopen) or the new one
(the mutation is complete) — never a partial state.  The
``ingest.segment.commit`` and ``ingest.compact.commit`` fault points
sit exactly on those seams so the chaos suite can land kills inside
the crash windows.

Compaction replays every committed segment onto the base snapshot and
writes the result as the next ``base-NNN`` directory; after the
manifest commit the old base and the merged segments are deleted.
Replaying the compacted log yields a database identical to replaying
the uncompacted one, which is what makes compaction invisible to the
graph layer (see ``tests/test_ingest_differential.py``).
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional

from repro.ingest.events import RowEvent, validate_event
from repro.obs import get_logger, get_registry
from repro.relational.column import Column
from repro.relational.csvio import load_database, save_database
from repro.relational.database import Database
from repro.relational.table import Table
from repro.resilience.checkpoint import atomic_write_json
from repro.resilience.faults import fault_point

__all__ = ["SegmentLog", "apply_events_to_database"]

_MANIFEST = "MANIFEST.json"
_SEGMENT_DIR = "segments"
#: Default segment partition width: one day of event time.
DEFAULT_PARTITION_SECONDS = 86400

_log = get_logger("ingest.segments")


def apply_events_to_database(db: Database, events: List[RowEvent]) -> Database:
    """Append validated ``events`` to ``db``'s tables, in order.

    Returns a new :class:`Database` (tables are immutable; untouched
    tables are shared).  Row order within each table is base rows
    first, then events in list order — the same order the delta
    builder applies, so a cold graph build over the result matches the
    incrementally maintained graph bit-for-bit.
    """
    grouped: Dict[str, List[RowEvent]] = {}
    for event in events:
        grouped.setdefault(event.table, []).append(event)
    out = Database(name=db.name)
    for table in db:
        batch = grouped.pop(table.name, None)
        if not batch:
            out.add_table(table)
            continue
        schema = table.schema
        data = {
            name: [event.values.get(name) for event in batch]
            for name in schema.column_names
        }
        delta = Table(
            schema,
            {
                name: Column(data[name], schema.dtype_of(name))
                for name in schema.column_names
            },
        )
        out.add_table(table.append(delta))
    if grouped:
        raise KeyError(f"events for unknown tables: {sorted(grouped)}")
    return out


class SegmentLog:
    """Append-only event log with an atomic manifest commit point."""

    def __init__(self, root: str, manifest: dict) -> None:
        self.root = root
        self._manifest = manifest

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, root: str, db: Database) -> "SegmentLog":
        """Initialize a log at ``root`` from a full database snapshot."""
        os.makedirs(root, exist_ok=True)
        if os.path.exists(os.path.join(root, _MANIFEST)):
            raise FileExistsError(f"segment log already exists at {root!r}")
        base = "base-000"
        save_database(db, os.path.join(root, base))
        os.makedirs(os.path.join(root, _SEGMENT_DIR), exist_ok=True)
        manifest = {
            "base": base,
            "segments": [],
            "watermark": None,
            "next_seq": 0,
        }
        atomic_write_json(os.path.join(root, _MANIFEST), manifest)
        return cls(root, manifest)

    @classmethod
    def open(cls, root: str) -> "SegmentLog":
        """Open an existing log, cleaning up any uncommitted leftovers.

        Recovery is a pure function of the manifest: segment files not
        named by it (a batch written but never committed) and ``*.tmp``
        staging files/directories are deleted; base directories other
        than the committed one (a compaction that never committed) are
        removed.  The surviving state is exactly the last committed
        one.
        """
        with open(os.path.join(root, _MANIFEST), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        committed = set(manifest["segments"])
        seg_dir = os.path.join(root, _SEGMENT_DIR)
        os.makedirs(seg_dir, exist_ok=True)
        removed = 0
        for name in os.listdir(seg_dir):
            if name not in committed:
                os.unlink(os.path.join(seg_dir, name))
                removed += 1
        for name in os.listdir(root):
            path = os.path.join(root, name)
            if name.endswith(".tmp"):
                shutil.rmtree(path) if os.path.isdir(path) else os.unlink(path)
                removed += 1
            elif name.startswith("base-") and os.path.isdir(path) and name != manifest["base"]:
                shutil.rmtree(path)
                removed += 1
        if removed:
            get_registry().counter("ingest.recovered_orphans").inc(removed)
            _log.warning(
                "removed uncommitted ingest files", extra={"root": root, "removed": removed}
            )
        return cls(root, manifest)

    # -- introspection --------------------------------------------------
    @property
    def watermark(self) -> Optional[int]:
        """Largest committed event timestamp (``None`` before any)."""
        return self._manifest["watermark"]

    @property
    def segments(self) -> List[str]:
        """Committed segment file names, in apply order."""
        return list(self._manifest["segments"])

    @property
    def base_name(self) -> str:
        """Directory name of the current base snapshot."""
        return self._manifest["base"]

    # -- reads ----------------------------------------------------------
    def load_base(self) -> Database:
        """The committed base snapshot as a database."""
        return load_database(os.path.join(self.root, self._manifest["base"]))

    def segment_events(self, name: str) -> List[RowEvent]:
        """Parse one committed segment file into events."""
        events = []
        with open(os.path.join(self.root, _SEGMENT_DIR, name), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(RowEvent.from_dict(json.loads(line)))
        return events

    def replay(self) -> Database:
        """Base snapshot plus every committed segment, in order."""
        db = self.load_base()
        schemas = {table.name: table.schema for table in db}
        for name in self._manifest["segments"]:
            events = [
                validate_event(event, schemas[event.table])
                for event in self.segment_events(name)
            ]
            db = apply_events_to_database(db, events)
        return db

    # -- writes ---------------------------------------------------------
    def _partition(self, events: List[RowEvent], partition_seconds: int) -> str:
        stamped = [e.timestamp for e in events if e.timestamp is not None]
        if not stamped:
            return "static"
        return f"{min(stamped) // partition_seconds:08d}"

    def append(
        self, events: List[RowEvent], partition_seconds: int = DEFAULT_PARTITION_SECONDS
    ) -> str:
        """Durably commit one batch of validated events; returns the
        segment file name.

        The segment is written and fsynced first; the manifest commit
        (after the ``ingest.segment.commit`` fault point) is what makes
        it real.  A crash before the commit leaves an orphan that
        :meth:`open` deletes.
        """
        if not events:
            raise ValueError("cannot append an empty event batch")
        seq = self._manifest["next_seq"]
        name = f"seg-{self._partition(events, partition_seconds)}-{seq:06d}.jsonl"
        path = os.path.join(self.root, _SEGMENT_DIR, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_dict()) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        stamped = [e.timestamp for e in events if e.timestamp is not None]
        watermark = self._manifest["watermark"]
        if stamped:
            watermark = max(stamped) if watermark is None else max(watermark, max(stamped))
        manifest = dict(self._manifest)
        manifest["segments"] = self._manifest["segments"] + [name]
        manifest["watermark"] = watermark
        manifest["next_seq"] = seq + 1
        fault_point("ingest.segment.commit")
        atomic_write_json(os.path.join(self.root, _MANIFEST), manifest)
        self._manifest = manifest
        get_registry().counter("ingest.segments_committed").inc()
        get_registry().counter("ingest.events_committed").inc(len(events))
        return name

    def compact(self) -> str:
        """Merge every committed segment into a new base snapshot.

        Replays the log, writes the result as the next ``base-NNN``
        directory (staged under ``.tmp``, renamed before the commit),
        commits the manifest (after the ``ingest.compact.commit``
        fault point), then deletes the old base and the merged
        segments.  Compacting an empty log (no segments) is a no-op
        that still rolls the base forward, exercising the
        empty-segment path.  Returns the new base name.
        """
        merged = self.replay()
        old_base = self._manifest["base"]
        new_base = f"base-{int(old_base.split('-')[1]) + 1:03d}"
        staging = os.path.join(self.root, new_base + ".tmp")
        if os.path.exists(staging):
            shutil.rmtree(staging)
        save_database(merged, staging)
        final = os.path.join(self.root, new_base)
        if os.path.exists(final):
            shutil.rmtree(final)
        os.rename(staging, final)
        merged_segments = list(self._manifest["segments"])
        manifest = dict(self._manifest)
        manifest["base"] = new_base
        manifest["segments"] = []
        fault_point("ingest.compact.commit")
        atomic_write_json(os.path.join(self.root, _MANIFEST), manifest)
        self._manifest = manifest
        for name in merged_segments:
            path = os.path.join(self.root, _SEGMENT_DIR, name)
            if os.path.exists(path):
                os.unlink(path)
        old_path = os.path.join(self.root, old_base)
        if os.path.exists(old_path):
            shutil.rmtree(old_path)
        get_registry().counter("ingest.compactions").inc()
        _log.info(
            "compacted segment log",
            extra={"root": self.root, "base": new_base, "merged_segments": len(merged_segments)},
        )
        return new_base
