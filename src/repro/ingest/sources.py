"""Pluggable event sources: where row events come from.

Two built-in sources cover the common shapes:

* :class:`InProcessSource` — an in-process API for application code
  (and tests) to emit events directly.
* :class:`CSVDropSource` — a drop-directory watcher: files named
  ``<table>*.csv`` appear in a directory, each row becomes one event,
  and processed files are renamed with an ``.ingested`` suffix so a
  restart never double-applies them.  Parsing reuses the CSV loader's
  row parser, so null tokens, dtype coercion, and malformed-row
  errors behave exactly like a snapshot load; malformed rows are
  quarantined (counted, never applied) rather than failing the poll.

Both produce :class:`~repro.ingest.events.RowEvent` batches for an
:class:`~repro.ingest.pipeline.IngestPipeline`; anything with a
``poll() -> List[RowEvent]`` method can stand in for them.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List

from repro.ingest.events import RowEvent
from repro.obs import get_logger, get_registry
from repro.relational.csvio import MalformedRowError, _parse_row
from repro.relational.schema import TableSchema

__all__ = ["InProcessSource", "CSVDropSource"]

_log = get_logger("ingest.sources")


class InProcessSource:
    """Buffer events emitted by in-process code; drain via :meth:`poll`."""

    def __init__(self) -> None:
        self._buffer: List[RowEvent] = []

    def emit(self, table: str, **values) -> RowEvent:
        """Queue one event (column values as keyword arguments)."""
        event = RowEvent(table=table, values=values)
        self._buffer.append(event)
        return event

    def emit_event(self, event: RowEvent) -> None:
        """Queue an already-constructed event."""
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def poll(self) -> List[RowEvent]:
        """All buffered events, clearing the buffer."""
        out, self._buffer = self._buffer, []
        return out


class CSVDropSource:
    """Watch a drop directory for per-table CSV files.

    A file ``<table>.csv`` or ``<table>-<anything>.csv`` holds new
    rows for ``<table>``, header required and matching the schema's
    column order.  Files are consumed in sorted name order (drop files
    with sortable names — e.g. ``events-000.csv`` — for a defined
    order) and renamed to ``<name>.ingested`` once read.
    """

    PROCESSED_SUFFIX = ".ingested"

    def __init__(self, directory: str, schemas: Dict[str, TableSchema]) -> None:
        self.directory = directory
        self.schemas = dict(schemas)
        os.makedirs(directory, exist_ok=True)

    def _table_for(self, filename: str) -> str:
        stem = filename[: -len(".csv")]
        if stem in self.schemas:
            return stem
        for name in self.schemas:
            if stem.startswith(name + "-"):
                return name
        raise KeyError(f"drop file {filename!r} matches no known table")

    def pending_files(self) -> List[str]:
        """Unprocessed ``.csv`` files, in sorted name order."""
        return sorted(
            name
            for name in os.listdir(self.directory)
            if name.endswith(".csv") and not name.endswith(self.PROCESSED_SUFFIX)
        )

    def _read_file(self, filename: str) -> List[RowEvent]:
        table = self._table_for(filename)
        schema = self.schemas[table]
        dtypes = [schema.dtype_of(name) for name in schema.column_names]
        events: List[RowEvent] = []
        quarantined = 0
        path = os.path.join(self.directory, filename)
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != schema.column_names:
                raise MalformedRowError(
                    table, 1, None,
                    f"drop-file header {header} does not match schema {schema.column_names}",
                )
            for row_number, row in enumerate(reader, start=2):
                try:
                    values = _parse_row(table, row_number, header, dtypes, row)
                except MalformedRowError as err:
                    quarantined += 1
                    _log.warning("quarantined malformed drop row", extra={
                        "file": filename, "row": row_number, "error": str(err),
                    })
                    continue
                events.append(RowEvent(table=table, values=dict(zip(header, values))))
        if quarantined:
            get_registry().counter("ingest.quarantined_rows").inc(quarantined)
        return events

    def poll(self) -> List[RowEvent]:
        """Read every pending drop file, marking each as processed."""
        events: List[RowEvent] = []
        for filename in self.pending_files():
            events.extend(self._read_file(filename))
            path = os.path.join(self.directory, filename)
            os.replace(path, path + self.PROCESSED_SUFFIX)
        return events
