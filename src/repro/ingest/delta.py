"""Incremental graph maintenance: validated events → CSR deltas.

:class:`DeltaGraphBuilder` keeps a live
:class:`~repro.graph.hetero.HeteroGraph` equal — bit-for-bit — to
what :func:`~repro.graph.builder.build_graph` would produce from the
grown database.  The identity rests on three append-only facts:

* node indices are row positions, and rows only append;
* the cold CSR sort (stable lexsort by ``(dst, time)``) is reproduced
  by the stable merge in ``_EdgeStore.merged``;
* feature statistics are fitted at ``stats_cutoff``, and the fast
  path only accepts rows strictly after it, so frozen statistics
  encode new rows to the same bytes a full re-encode would.

``apply`` mutates the database *in place* (tables are replaced inside
the same :class:`~repro.relational.database.Database` object) so
models, planners, and tiers holding a reference observe the growth
without re-plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.builder import build_graph
from repro.graph.encoders import FeatureGrower
from repro.graph.hetero import TIME_MIN, EdgeType, HeteroGraph
from repro.ingest.events import (
    EventValidationError,
    RowEvent,
    UnresolvedReferenceError,
)
from repro.obs import get_registry
from repro.relational.column import Column
from repro.relational.database import Database
from repro.relational.table import Table

__all__ = ["DeltaGraphBuilder", "DeltaReport"]


@dataclass
class DeltaReport:
    """What one applied delta changed — the refresh layer's contract.

    ``touched`` maps node type → node indices whose rows or incident
    edges changed (new nodes and the existing foreign-key parents they
    attached to).  ``touched_fraction`` is the worst-case fraction of
    *pre-delta* nodes touched in any one type — the selectivity signal
    the refresh policy thresholds on.  ``min_event_time`` is the
    earliest timestamp the delta introduced (``TIME_MIN`` when it
    contained static rows, which are visible at every context time).
    """

    touched: Dict[str, np.ndarray] = field(default_factory=dict)
    min_event_time: int = TIME_MIN
    watermark: Optional[int] = None
    num_events: int = 0
    new_nodes: Dict[str, int] = field(default_factory=dict)
    new_edges: int = 0
    touched_fraction: float = 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest for logs and the CLI."""
        return {
            "events": self.num_events,
            "new_nodes": dict(self.new_nodes),
            "new_edges": self.new_edges,
            "touched": {t: int(len(ids)) for t, ids in self.touched.items()},
            "touched_fraction": round(self.touched_fraction, 6),
            "watermark": self.watermark,
        }


class DeltaGraphBuilder:
    """Applies validated event batches to a live database + graph pair."""

    def __init__(
        self,
        db: Database,
        graph: Optional[HeteroGraph] = None,
        stats_cutoff: Optional[int] = None,
    ) -> None:
        self.db = db
        self.stats_cutoff = stats_cutoff
        self.graph = graph if graph is not None else build_graph(db, stats_cutoff=stats_cutoff)
        self._grower = FeatureGrower(stats_cutoff)
        self._key_to_index: Dict[str, Dict[object, int]] = {}
        for table in db:
            pk = table.schema.primary_key
            if pk is not None:
                keys = table[pk].values
                self._key_to_index[table.name] = {
                    key: i for i, key in enumerate(keys.tolist())
                }
        span = db.time_span()
        self.watermark: Optional[int] = int(span[1]) if span is not None else None

    # -- screening ------------------------------------------------------
    def screen(
        self, events: List[RowEvent]
    ) -> Tuple[List[RowEvent], List[Tuple[RowEvent, str]], List[RowEvent]]:
        """Partition a batch into (appliable, duplicates, unresolved).

        Duplicate primary keys (against the live database or earlier
        events in the batch) are permanent rejects.  Events whose
        foreign keys reference a row that neither exists nor arrives
        in this batch are *unresolved* — quarantine candidates the
        pipeline retries once their parents land.  Resolution iterates
        to a fixed point so a child is not admitted on the strength of
        a parent that was itself quarantined.
        """
        appliable: List[RowEvent] = []
        duplicates: List[Tuple[RowEvent, str]] = []
        batch_keys: Dict[str, set] = {name: set() for name in self._key_to_index}
        for event in events:
            schema = self.db[event.table].schema
            pk = schema.primary_key
            if pk is not None:
                key = event.values[pk]
                if key in self._key_to_index[event.table] or key in batch_keys[event.table]:
                    duplicates.append((event, f"duplicate primary key {key!r}"))
                    continue
                batch_keys[event.table].add(key)
            appliable.append(event)

        unresolved: List[RowEvent] = []
        while True:
            available = {
                name: set(self._key_to_index.get(name, {}))
                for name in self.db.table_names
            }
            for event in appliable:
                pk = self.db[event.table].schema.primary_key
                if pk is not None:
                    available[event.table].add(event.values[pk])
            still: List[RowEvent] = []
            moved = False
            for event in appliable:
                schema = self.db[event.table].schema
                missing = None
                for fk in schema.foreign_keys:
                    key = event.values[fk.column]
                    if key is not None and key not in available.get(fk.ref_table, set()):
                        missing = fk
                        break
                if missing is None:
                    still.append(event)
                else:
                    unresolved.append(event)
                    moved = True
            appliable = still
            if not moved:
                break
        return appliable, duplicates, unresolved

    # -- application ----------------------------------------------------
    def apply(self, events: List[RowEvent]) -> DeltaReport:
        """Append ``events`` to the database and graph, incrementally.

        Events must be validated and screened (strict: a duplicate key
        raises :class:`EventValidationError`, an unresolved reference
        raises :class:`UnresolvedReferenceError`).  Returns the
        :class:`DeltaReport` the refresh layer consumes.
        """
        appliable, duplicates, unresolved = self.screen(events)
        if duplicates:
            event, reason = duplicates[0]
            raise EventValidationError(event.table, reason)
        if unresolved:
            event = unresolved[0]
            schema = self.db[event.table].schema
            for fk in schema.foreign_keys:
                key = event.values[fk.column]
                if key is not None and key not in self._key_to_index.get(fk.ref_table, {}):
                    raise UnresolvedReferenceError(event.table, fk.column, key)
            raise UnresolvedReferenceError(event.table, "?", None)

        grouped: Dict[str, List[RowEvent]] = {}
        for event in events:
            grouped.setdefault(event.table, []).append(event)

        report = DeltaReport(watermark=self.watermark, num_events=len(events))
        touched: Dict[str, List[np.ndarray]] = {}
        old_counts = {name: self.graph.num_nodes(name) for name in self.graph.node_types}
        min_time: Optional[int] = None
        has_static = False

        # Pass 1 — grow tables and node types (mirrors build_graph's
        # first loop: nodes before any edge, so same-batch foreign keys
        # resolve regardless of table order).
        grown: Dict[str, Table] = {}
        for table in self.db:
            batch = grouped.get(table.name)
            if not batch:
                continue
            schema = table.schema
            data = {
                name: [event.values.get(name) for event in batch]
                for name in schema.column_names
            }
            delta = Table(
                schema,
                {
                    name: Column(data[name], schema.dtype_of(name))
                    for name in schema.column_names
                },
            )
            new_table = table.append(delta)
            self.db.add_table(new_table, replace=True)
            grown[table.name] = new_table

            start = old_counts[table.name]
            if schema.time_column is not None:
                raw = new_table[schema.time_column]
                new_times = np.where(
                    raw.null_mask(), TIME_MIN, raw.values.astype(np.int64)
                )[start:]
                batch_min = int(new_times.min())
                min_time = batch_min if min_time is None else min(min_time, batch_min)
                stamped = new_times[new_times != TIME_MIN]
                if len(stamped):
                    high = int(stamped.max())
                    self.watermark = high if self.watermark is None else max(self.watermark, high)
            else:
                new_times = np.full(len(batch), TIME_MIN, dtype=np.int64)
                has_static = True
            self.graph.grow_node_type(table.name, new_times)
            report.new_nodes[table.name] = len(batch)
            touched.setdefault(table.name, []).append(
                np.arange(start, start + len(batch), dtype=np.int64)
            )

            pk = schema.primary_key
            if pk is not None:
                keys = new_table[pk].values
                self.graph.node_keys[table.name] = keys
                mapping = self._key_to_index[table.name]
                for offset, key in enumerate(keys[start:].tolist()):
                    mapping[key] = start + offset
            if table.name in self.graph.features:
                self.graph.features[table.name] = self._grower.grow(
                    new_table, self.graph.features[table.name]
                )

        # Pass 2 — append edges (mirrors build_graph's second loop).
        for table_name, new_table in grown.items():
            schema = new_table.schema
            start = old_counts[table_name]
            if schema.time_column is not None:
                raw = new_table[schema.time_column]
                child_times = np.where(
                    raw.null_mask(), TIME_MIN, raw.values.astype(np.int64)
                )
            else:
                child_times = None
            for fk in schema.foreign_keys:
                column = new_table[fk.column]
                valid = ~column.null_mask()
                valid[:start] = False
                child_rows = np.flatnonzero(valid)
                if not len(child_rows):
                    continue
                mapping = self._key_to_index[fk.ref_table]
                parent_rows = np.fromiter(
                    (mapping[key] for key in column.values[child_rows].tolist()),
                    dtype=np.int64,
                    count=len(child_rows),
                )
                edge_times = (
                    child_times[child_rows]
                    if child_times is not None
                    else np.full(len(child_rows), TIME_MIN, dtype=np.int64)
                )
                forward = EdgeType(table_name, fk.column, fk.ref_table)
                self.graph.append_edges(forward, child_rows, parent_rows, times=edge_times)
                self.graph.append_edges(
                    forward.reverse(), parent_rows, child_rows, times=edge_times
                )
                report.new_edges += 2 * len(child_rows)
                touched.setdefault(fk.ref_table, []).append(np.unique(parent_rows))

        report.touched = {
            name: np.unique(np.concatenate(parts)) for name, parts in touched.items()
        }
        report.min_event_time = (
            TIME_MIN if has_static or min_time is None else int(min_time)
        )
        report.watermark = self.watermark
        fractions = [
            len(ids[ids < old_counts.get(name, 0)]) / old_counts[name]
            for name, ids in report.touched.items()
            if old_counts.get(name, 0) > 0
        ]
        report.touched_fraction = float(max(fractions)) if fractions else 0.0
        registry = get_registry()
        registry.counter("ingest.events_applied").inc(len(events))
        registry.counter("ingest.edges_appended").inc(report.new_edges)
        return report
