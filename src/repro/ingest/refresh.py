"""Staleness-aware refresh: propagate a delta to models, selectively.

After a delta lands, everything downstream that memoized graph-derived
state is *potentially* stale — but only the pieces whose inputs the
delta actually touched are *actually* stale.  :func:`refresh_model`
walks a fitted model (plain or routed) and invalidates exactly those:

* subgraph-cache entries — retained unless they contain a touched
  entity at a context time that admits the new rows
  (:meth:`~repro.graph.cache.CachedSampler.apply_delta`);
* the link trainer's item-embedding memo — dropped only if the item
  type was touched;
* the yellow tier's per-cutoff feature blocks and green's popularity
  memos — dropped only for cutoffs at/after the earliest new event;
* the router's fanout-work statistic — re-estimated from the grown
  CSR (its latency EMAs are *kept*: machine speed did not change).

:class:`RefreshPolicy` decides *when* to do that work: immediately
for big deltas (touched-entity fraction over a threshold), otherwise
deferred until the event-time watermark has advanced past a
staleness budget — the knob that trades refresh cost against serving
models a bounded distance behind the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graph.hetero import TIME_MIN
from repro.ingest.delta import DeltaReport
from repro.obs import get_logger, get_registry

__all__ = ["RefreshPolicy", "refresh_model"]

_log = get_logger("ingest.refresh")


def _merge_touched(
    into: Dict[str, np.ndarray], new: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    for name, ids in new.items():
        have = into.get(name)
        into[name] = ids if have is None else np.unique(np.concatenate([have, ids]))
    return into


@dataclass
class RefreshPolicy:
    """When to propagate accumulated deltas to serving models.

    ``max_staleness`` bounds how far (in event time, seconds) the
    served graph may lag the committed watermark; ``touched_threshold``
    forces an immediate refresh when any node type had that fraction
    of its pre-delta nodes touched (a big delta invalidates so much
    that deferring buys nothing).
    """

    max_staleness: int = 3600
    touched_threshold: float = 0.01

    def __post_init__(self) -> None:
        self._pending: Optional[DeltaReport] = None
        self._refreshed_watermark: Optional[int] = None

    @property
    def pending(self) -> Optional[DeltaReport]:
        """The merged not-yet-refreshed delta, if any."""
        return self._pending

    def observe(self, report: DeltaReport) -> None:
        """Fold one applied delta into the pending accumulator."""
        if report.num_events == 0:
            return
        if self._pending is None:
            merged = DeltaReport(
                touched=dict(report.touched),
                min_event_time=report.min_event_time,
                watermark=report.watermark,
                num_events=report.num_events,
                new_nodes=dict(report.new_nodes),
                new_edges=report.new_edges,
                touched_fraction=report.touched_fraction,
            )
            self._pending = merged
            return
        pending = self._pending
        _merge_touched(pending.touched, report.touched)
        pending.min_event_time = min(pending.min_event_time, report.min_event_time)
        pending.watermark = report.watermark
        pending.num_events += report.num_events
        for name, count in report.new_nodes.items():
            pending.new_nodes[name] = pending.new_nodes.get(name, 0) + count
        pending.new_edges += report.new_edges
        pending.touched_fraction = max(pending.touched_fraction, report.touched_fraction)

    def staleness(self) -> int:
        """Event-time lag between pending watermark and last refresh."""
        if self._pending is None or self._pending.watermark is None:
            return 0
        if self._refreshed_watermark is None:
            return self.max_staleness + 1  # never refreshed: anything pending is due
        return int(self._pending.watermark) - int(self._refreshed_watermark)

    def due(self) -> bool:
        """Whether the pending delta should be propagated now."""
        if self._pending is None:
            return False
        if self._pending.touched_fraction >= self.touched_threshold:
            return True
        return self.staleness() >= self.max_staleness

    def drain(self) -> Optional[DeltaReport]:
        """Take the pending delta (marking its watermark refreshed)."""
        report, self._pending = self._pending, None
        if report is not None:
            self._refreshed_watermark = report.watermark
        return report


def refresh_model(model, report: DeltaReport) -> Dict[str, int]:
    """Selectively invalidate a fitted model's memoized state.

    ``model`` is a ``TrainedPredictiveModel`` or
    ``RoutedPredictiveModel`` whose ``graph``/``db`` are the live
    objects the delta mutated.  Returns invalidation counters (also
    exported under ``ingest.refresh.*``).
    """
    red = getattr(model, "red", model)
    stats = {
        "cache_retained": 0,
        "cache_invalidated": 0,
        "item_memo_dropped": 0,
        "yellow_blocks_dropped": 0,
        "popularity_dropped": 0,
    }
    for trainer in (red.node_trainer, red.link_trainer):
        if trainer is None:
            continue
        sampler = trainer.sampler
        if hasattr(sampler, "apply_delta"):
            out = sampler.apply_delta(report.touched, report.min_event_time)
            stats["cache_retained"] += out["retained"]
            stats["cache_invalidated"] += out["invalidated"]
        if hasattr(trainer, "_item_embed_cache"):
            item_type = trainer.model.item_type
            touched_items = report.touched.get(item_type)
            if touched_items is not None and len(touched_items):
                if trainer._item_embed_cache is not None:
                    stats["item_memo_dropped"] += 1
                trainer._item_embed_cache = None
            trainer._num_items = trainer.graph.num_nodes(item_type)

    min_time = report.min_event_time
    green = getattr(model, "green", None)
    if green is not None and green._heuristic is not None:
        memo = green._heuristic._popularity
        stale = [c for c in memo if min_time == TIME_MIN or c >= min_time]
        for cutoff in stale:
            del memo[cutoff]
        stats["popularity_dropped"] += len(stale)
    yellow = getattr(model, "yellow", None)
    if yellow is not None and yellow._builder is not None:
        if report.new_nodes.get(yellow.entity_table):
            # New entity rows: the builder's key→slot mapping is stale,
            # so rebind wholesale (drops every block).
            stats["yellow_blocks_dropped"] += len(yellow._blocks)
            yellow.bind(red.db, green)
        else:
            stale = [
                c for c in yellow._blocks if min_time == TIME_MIN or c >= min_time
            ]
            for cutoff in stale:
                del yellow._blocks[cutoff]
            stats["yellow_blocks_dropped"] += len(stale)
    cost = getattr(model, "cost", None)
    if cost is not None:
        from repro.pql.router import estimate_fanout_work

        config = red.config
        fanouts = config.fanouts or [8] * config.num_layers
        cost.fanout_work = estimate_fanout_work(
            red.graph, red.binding.query.entity_table, fanouts
        )

    registry = get_registry()
    for name, value in stats.items():
        if value:
            registry.counter(f"ingest.refresh.{name}").inc(value)
    _log.info("refreshed model after delta", extra=dict(stats))
    return stats
