"""The ingest pipeline: sources → validate/order → commit → delta.

:class:`IngestPipeline` owns the full path for one segment log:

1. events (from any source's ``poll()`` or passed directly) are
   validated against the schema;
2. time ordering is enforced per the ``out_of_order`` policy —
   ``"reject"`` quarantines events older than the committed
   watermark, ``"reorder"`` sorts the batch by timestamp first (and
   still rejects events older than what is already sealed);
3. duplicate primary keys are rejected; events referencing a
   foreign-key target that does not exist yet are quarantined and
   retried on every subsequent batch (late resolution);
4. surviving events are committed to the segment log (crash-safe)
   and *then* applied to the live database + graph, so a crash
   between commit and apply is healed by replay on reopen.

The returned :class:`IngestReport` carries the applied
:class:`~repro.ingest.delta.DeltaReport` plus per-disposition counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ingest.delta import DeltaGraphBuilder, DeltaReport
from repro.ingest.events import EventValidationError, RowEvent, validate_event
from repro.ingest.segments import SegmentLog
from repro.obs import get_logger, get_registry

__all__ = ["IngestPipeline", "IngestReport"]

_log = get_logger("ingest.pipeline")

_POLICIES = ("reject", "reorder")


@dataclass
class IngestReport:
    """Outcome of one :meth:`IngestPipeline.process` call."""

    delta: Optional[DeltaReport] = None
    applied: int = 0
    rejected: List[Tuple[RowEvent, str]] = field(default_factory=list)
    quarantined: int = 0
    resolved_late: int = 0
    segment: Optional[str] = None

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest for logs and the CLI."""
        out = {
            "applied": self.applied,
            "rejected": len(self.rejected),
            "quarantined": self.quarantined,
            "resolved_late": self.resolved_late,
            "segment": self.segment,
        }
        if self.delta is not None:
            out["delta"] = self.delta.summary()
        return out


class IngestPipeline:
    """Validated, ordered, crash-safe ingest into a live graph."""

    def __init__(
        self,
        log: SegmentLog,
        builder: Optional[DeltaGraphBuilder] = None,
        stats_cutoff: Optional[int] = None,
        out_of_order: str = "reject",
    ) -> None:
        if out_of_order not in _POLICIES:
            raise ValueError(f"out_of_order must be one of {_POLICIES}, got {out_of_order!r}")
        self.log = log
        self.out_of_order = out_of_order
        if builder is None:
            builder = DeltaGraphBuilder(log.replay(), stats_cutoff=stats_cutoff)
        self.builder = builder
        self._schemas = {table.name: table.schema for table in builder.db}
        #: Events awaiting a foreign-key parent (late resolution).
        self.pending: List[RowEvent] = []

    # -- convenience ----------------------------------------------------
    @property
    def db(self):
        """The live database (mutated in place as deltas apply)."""
        return self.builder.db

    @property
    def graph(self):
        """The live graph (mutated in place as deltas apply)."""
        return self.builder.graph

    @property
    def watermark(self) -> Optional[int]:
        """Largest applied event timestamp."""
        return self.builder.watermark

    # -- the pipeline ---------------------------------------------------
    def _validate(
        self, events: List[RowEvent], report: IngestReport
    ) -> List[RowEvent]:
        valid: List[RowEvent] = []
        for event in events:
            schema = self._schemas.get(event.table)
            if schema is None:
                report.rejected.append((event, f"unknown table {event.table!r}"))
                continue
            try:
                valid.append(validate_event(event, schema))
            except EventValidationError as err:
                report.rejected.append((event, err.detail))
        return valid

    def _order(self, events: List[RowEvent], report: IngestReport) -> List[RowEvent]:
        watermark = self.builder.watermark
        if self.out_of_order == "reorder":
            events = sorted(
                events,
                key=lambda e: (e.timestamp is not None, e.timestamp or 0),
            )
        kept: List[RowEvent] = []
        for event in events:
            if (
                event.timestamp is not None
                and watermark is not None
                and event.timestamp < watermark
            ):
                report.rejected.append(
                    (event, f"timestamp {event.timestamp} behind watermark {watermark}")
                )
                continue
            kept.append(event)
        return kept

    def process(self, events: List[RowEvent]) -> IngestReport:
        """Run one batch (plus any quarantined stragglers) end-to-end."""
        report = IngestReport()
        retry = self.pending
        self.pending = []
        fresh = self._order(self._validate(events, report), report)
        # Quarantined events already passed validation and ordering in
        # their own batch; they re-enter before the fresh batch so a
        # parent arriving now unblocks them in apply order.
        batch = retry + fresh
        if not batch:
            self._count(report)
            return report
        appliable, duplicates, unresolved = self.builder.screen(batch)
        report.rejected.extend(duplicates)
        admitted = {id(event) for event in appliable}
        report.resolved_late = sum(1 for event in retry if id(event) in admitted)
        self.pending = unresolved
        report.quarantined = len(unresolved)
        if appliable:
            report.segment = self.log.append(appliable)
            report.delta = self.builder.apply(appliable)
            report.applied = len(appliable)
        self._count(report)
        return report

    def _count(self, report: IngestReport) -> None:
        registry = get_registry()
        if report.rejected:
            registry.counter("ingest.events_rejected").inc(len(report.rejected))
            for event, reason in report.rejected:
                _log.warning(
                    "rejected ingest event", extra={"table": event.table, "reason": reason}
                )
        if report.quarantined:
            registry.counter("ingest.events_quarantined").inc(report.quarantined)
        if report.resolved_late:
            registry.counter("ingest.events_resolved_late").inc(report.resolved_late)

    def compact(self) -> str:
        """Compact the underlying segment log (see :meth:`SegmentLog.compact`)."""
        return self.log.compact()
