"""Row events: the unit of streaming ingest.

A :class:`RowEvent` is one new row for one table, validated against
the table's schema before it is allowed anywhere near a segment file
or the live graph.  Validation mirrors the CSV loader's strictness:
unknown columns, uncoercible values, and null primary keys are
errors; missing feature columns become nulls (the same thing an empty
CSV field would).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.relational.schema import TableSchema
from repro.relational.types import DType

__all__ = [
    "RowEvent",
    "IngestError",
    "EventValidationError",
    "UnresolvedReferenceError",
    "validate_event",
]


class IngestError(ValueError):
    """Base class for ingest failures."""


class EventValidationError(IngestError):
    """An event failed schema validation (named table + detail)."""

    def __init__(self, table: str, detail: str) -> None:
        super().__init__(f"table {table!r}: {detail}")
        self.table = table
        self.detail = detail


class UnresolvedReferenceError(IngestError):
    """An event references a foreign-key target that does not exist yet.

    Recoverable: the pipeline quarantines the event and retries it
    after later batches may have delivered the parent row.
    """

    def __init__(self, table: str, column: str, key: Any) -> None:
        super().__init__(
            f"table {table!r}: column {column!r} references unknown key {key!r}"
        )
        self.table = table
        self.column = column
        self.key = key


@dataclass
class RowEvent:
    """One new row destined for ``table``.

    ``values`` maps column name → python value (``None`` for null).
    ``timestamp`` is filled in by :func:`validate_event` from the
    schema's time column (``None`` for static tables).
    """

    table: str
    values: Dict[str, Any] = field(default_factory=dict)
    timestamp: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON-serializable representation (segment file line)."""
        return {"table": self.table, "values": self.values}

    @classmethod
    def from_dict(cls, data: dict) -> "RowEvent":
        """Inverse of :meth:`to_dict` (timestamp re-derived on validation)."""
        return cls(table=data["table"], values=dict(data["values"]))


def _coerce(value: Any, dtype: DType) -> Any:
    if value is None:
        return None
    if dtype == DType.STRING:
        return str(value)
    if dtype == DType.BOOL:
        if isinstance(value, str):
            return value.strip().lower() in ("1", "true", "t", "yes")
        return bool(value)
    if dtype == DType.FLOAT64:
        return float(value)
    # INT64 / TIMESTAMP
    return int(float(value))


def validate_event(event: RowEvent, schema: TableSchema) -> RowEvent:
    """Validate and normalize one event against ``schema``.

    Returns the event with coerced values (every schema column
    present, nulls explicit) and ``timestamp`` populated.  Raises
    :class:`EventValidationError` on unknown columns, uncoercible
    values, a null primary key, or a null/missing time column on a
    temporal table.
    """
    if event.table != schema.name:
        raise EventValidationError(schema.name, f"event routed to wrong table {event.table!r}")
    known = set(schema.column_names)
    unknown = set(event.values) - known
    if unknown:
        raise EventValidationError(schema.name, f"unknown columns {sorted(unknown)}")
    coerced: Dict[str, Any] = {}
    for name in schema.column_names:
        dtype = schema.dtype_of(name)
        raw = event.values.get(name)
        try:
            coerced[name] = _coerce(raw, dtype)
        except (TypeError, ValueError, OverflowError) as err:
            raise EventValidationError(
                schema.name, f"column {name!r}: cannot coerce {raw!r} to {dtype.value}: {err}"
            ) from err
    pk = schema.primary_key
    if pk is not None and coerced[pk] is None:
        raise EventValidationError(schema.name, f"null primary key {pk!r}")
    timestamp: Optional[int] = None
    if schema.time_column is not None:
        timestamp = coerced[schema.time_column]
        if timestamp is None:
            raise EventValidationError(
                schema.name, f"null time column {schema.time_column!r} on a temporal table"
            )
    event.values = coerced
    event.timestamp = timestamp
    return event
