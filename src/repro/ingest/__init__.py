"""Streaming ingest: append-only events → incremental graph deltas.

The paper's premise is that the database *is* the graph; this package
keeps that true while rows keep arriving.  Events flow through a
pluggable source layer (:mod:`repro.ingest.sources`), are validated
and time-ordered into crash-safe, time-partitioned segments
(:mod:`repro.ingest.segments`), and are applied as incremental CSR
deltas to the live :class:`~repro.graph.hetero.HeteroGraph`
(:mod:`repro.ingest.delta`) — bit-identical to a cold rebuild at the
same watermark.  Staleness-aware refresh hooks
(:mod:`repro.ingest.refresh`) invalidate only what a delta actually
touched: subgraph-cache entries, item-embedding memos, and router
cost snapshots survive unless their inputs changed.
"""

from repro.ingest.delta import DeltaGraphBuilder, DeltaReport
from repro.ingest.events import (
    EventValidationError,
    IngestError,
    RowEvent,
    UnresolvedReferenceError,
)
from repro.ingest.pipeline import IngestPipeline, IngestReport
from repro.ingest.refresh import RefreshPolicy, refresh_model
from repro.ingest.segments import SegmentLog
from repro.ingest.sources import CSVDropSource, InProcessSource

__all__ = [
    "RowEvent",
    "IngestError",
    "EventValidationError",
    "UnresolvedReferenceError",
    "SegmentLog",
    "InProcessSource",
    "CSVDropSource",
    "DeltaGraphBuilder",
    "DeltaReport",
    "IngestPipeline",
    "IngestReport",
    "RefreshPolicy",
    "refresh_model",
]
