"""Baselines: the manual-feature-engineering pipeline the paper argues against.

* :mod:`repro.baselines.features` — the hand-written windowed
  aggregates an analyst would produce to flatten the schema into one
  table;
* :mod:`repro.baselines.trees` — gradient-boosted decision trees from
  scratch (histogram splits, logistic and squared loss);
* :mod:`repro.baselines.linear` — ridge and logistic regression;
* :mod:`repro.baselines.heuristics` — trivial reference points
  (base rate, global mean, popularity ranking);
* :mod:`repro.baselines.mf` — BPR matrix factorization for the link
  task.
"""

from repro.baselines.features import FeatureBuilder
from repro.baselines.trees import DecisionTreeRegressor, GradientBoostingClassifier, GradientBoostingRegressor
from repro.baselines.linear import LinearRegression, LogisticRegression
from repro.baselines.heuristics import GlobalMeanBaseline, MajorityClassBaseline, PopularityRanker
from repro.baselines.mf import BPRMatrixFactorization

__all__ = [
    "FeatureBuilder",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "LinearRegression",
    "LogisticRegression",
    "MajorityClassBaseline",
    "GlobalMeanBaseline",
    "PopularityRanker",
    "BPRMatrixFactorization",
]
