"""Ridge linear regression and L2-regularized logistic regression.

Both standardize features internally (NaN → 0 after standardization,
with the caller expected to provide missing-indicator columns if
missingness is informative — :class:`~repro.baselines.features.FeatureBuilder`
does).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["LinearRegression", "LogisticRegression"]


class _Standardizer:
    def fit(self, x: np.ndarray) -> "_Standardizer":
        finite = np.isfinite(x)
        safe = np.where(finite, x, 0.0)
        counts = np.maximum(finite.sum(axis=0), 1)
        self.mean_ = safe.sum(axis=0) / counts
        centered = np.where(finite, x - self.mean_, 0.0)
        self.std_ = np.sqrt((centered**2).sum(axis=0) / counts)
        self.std_[self.std_ < 1e-12] = 1.0
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        z = (x - self.mean_) / self.std_
        return np.where(np.isfinite(z), z, 0.0)


class LinearRegression:
    """Ridge regression solved in closed form (normal equations)."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_ = 0.0
        self._scaler = _Standardizer()

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Fit on (n, d) features and (n,) targets."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        z = self._scaler.fit(x).transform(x)
        n, d = z.shape
        self.intercept_ = float(y.mean()) if n else 0.0
        centered_y = y - self.intercept_
        gram = z.T @ z + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, z.T @ centered_y) if d else np.empty(0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted values, shape (n,)."""
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        z = self._scaler.transform(np.asarray(x, dtype=np.float64))
        return z @ self.coef_ + self.intercept_


class LogisticRegression:
    """Binary logistic regression trained with full-batch Newton (IRLS)."""

    def __init__(self, alpha: float = 1.0, max_iter: int = 50, tol: float = 1e-8) -> None:
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_ = 0.0
        self._scaler = _Standardizer()

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on (n, d) features and binary (n,) targets."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        z = self._scaler.fit(x).transform(x)
        n, d = z.shape
        design = np.column_stack([np.ones(n), z])
        weights = np.zeros(d + 1)
        penalty = self.alpha * np.eye(d + 1)
        penalty[0, 0] = 0.0  # never penalize the intercept
        for _ in range(self.max_iter):
            raw = design @ weights
            prob = 1.0 / (1.0 + np.exp(-np.clip(raw, -500, 500)))
            gradient = design.T @ (prob - y) + penalty @ weights
            hessian_diag = np.maximum(prob * (1 - prob), 1e-9)
            hessian = (design * hessian_diag[:, None]).T @ design + penalty
            step = np.linalg.solve(hessian, gradient)
            weights = weights - step
            if float(np.abs(step).max()) < self.tol:
                break
        self.intercept_ = float(weights[0])
        self.coef_ = weights[1:]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(positive class), shape (n,)."""
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        z = self._scaler.transform(np.asarray(x, dtype=np.float64))
        raw = z @ self.coef_ + self.intercept_
        return 1.0 / (1.0 + np.exp(-np.clip(raw, -500, 500)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions at threshold 0.5."""
        return (self.predict_proba(x) > 0.5).astype(np.float64)
