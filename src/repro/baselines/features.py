"""Hand-written feature engineering for tabular baselines.

This module is the *counterfactual* the paper argues against: the
schema-flattening work an analyst performs so a GBDT can consume a
relational database.  For one entity table it derives, per (entity,
cutoff) pair:

1. **Own columns** — numerics as-is, booleans as 0/1, timestamps as
   age-in-days at the cutoff, strings one-hot over the most frequent
   values;
2. **One-hop aggregates** — for every child table with a foreign key
   to the entity: event counts over trailing windows (7/30/90 days and
   all history), days since first/last event, and sum/avg/max of each
   numeric column per window;
3. **Two-hop aggregates** — for every grandchild table keyed to a
   child: windowed counts and numeric averages of grandchild rows
   attached to the entity's children (e.g. votes received by a user's
   posts).

All aggregates respect the cutoff (only facts with ``ts <= cutoff``
contribute), so the baseline is leak-free — the comparison with the
GNN is about representational effort, not leakage.

Feature columns are ordered cheap-to-expensive (own → one-hop counts →
one-hop numerics → two-hop); the Figure 5 "effort budget" sweep takes
prefixes of this order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.relational.algebra import aggregate_grouped_values
from repro.relational.database import Database
from repro.relational.table import Table
from repro.relational.types import DType

__all__ = ["FeatureBuilder"]

_DAY = 86400.0
_MAX_ONE_HOT = 10


@dataclass
class _ChildLink:
    """A child table reachable via one FK hop from the entity."""

    table: Table
    fk_column: str
    numeric_columns: List[str]


@dataclass
class _GrandchildLink:
    """A grandchild table: grandchild --fk--> child --fk--> entity."""

    child: _ChildLink
    table: Table
    fk_column: str  # grandchild column referencing the child's pk
    numeric_columns: List[str]


class FeatureBuilder:
    """Builds the flattened feature matrix for one entity table.

    Parameters
    ----------
    db:
        The relational database.
    entity_table:
        Table whose rows are the prediction entities.
    windows_days:
        Trailing window lengths for aggregates (plus all-history).
    include_two_hop:
        Whether to derive grandchild aggregates (the expensive,
        usually-skipped analyst work).
    """

    def __init__(
        self,
        db: Database,
        entity_table: str,
        windows_days: Sequence[int] = (7, 30, 90),
        include_two_hop: bool = True,
    ) -> None:
        self.db = db
        self.entity_table = db[entity_table]
        self.windows_days = list(windows_days)
        self.include_two_hop = include_two_hop
        pk = self.entity_table.schema.primary_key
        if pk is None:
            raise ValueError(f"entity table {entity_table!r} needs a primary key")
        self._pk = pk
        self._key_to_slot = {
            key: i for i, key in enumerate(self.entity_table[pk].values.tolist())
        }
        self._children = self._find_children()
        self._grandchildren = self._find_grandchildren() if include_two_hop else []
        self._one_hot_vocab = self._fit_one_hot()
        self.feature_names: List[str] = self._compute_feature_names()

    # ------------------------------------------------------------------
    # Schema discovery
    # ------------------------------------------------------------------
    def _numeric_feature_columns(self, table: Table) -> List[str]:
        return [
            name
            for name in table.schema.feature_columns
            if table.schema.dtype_of(name) in (DType.INT64, DType.FLOAT64)
        ]

    def _find_children(self) -> List[_ChildLink]:
        children = []
        for table in self.db:
            if table.name == self.entity_table.name or table.schema.time_column is None:
                continue
            for fk in table.schema.foreign_keys:
                if fk.ref_table == self.entity_table.name:
                    children.append(
                        _ChildLink(
                            table=table,
                            fk_column=fk.column,
                            numeric_columns=self._numeric_feature_columns(table),
                        )
                    )
        return children

    def _find_grandchildren(self) -> List[_GrandchildLink]:
        links = []
        for child in self._children:
            child_pk = child.table.schema.primary_key
            if child_pk is None:
                continue
            for table in self.db:
                if table.schema.time_column is None or table.name == child.table.name:
                    continue
                for fk in table.schema.foreign_keys:
                    if fk.ref_table == child.table.name:
                        links.append(
                            _GrandchildLink(
                                child=child,
                                table=table,
                                fk_column=fk.column,
                                numeric_columns=self._numeric_feature_columns(table),
                            )
                        )
        return links

    def _fit_one_hot(self) -> Dict[str, List[str]]:
        vocab: Dict[str, List[str]] = {}
        for name in self.entity_table.schema.feature_columns:
            if self.entity_table.schema.dtype_of(name) == DType.STRING:
                counts = self.entity_table[name].value_counts()
                top = sorted(counts, key=lambda v: (-counts[v], v))[:_MAX_ONE_HOT]
                vocab[name] = top
        return vocab

    # ------------------------------------------------------------------
    # Feature names (fixed order = effort priority)
    # ------------------------------------------------------------------
    def _compute_feature_names(self) -> List[str]:
        names: List[str] = []
        schema = self.entity_table.schema
        for column in schema.feature_columns:
            dtype = schema.dtype_of(column)
            if dtype in (DType.INT64, DType.FLOAT64):
                names.append(f"own.{column}")
            elif dtype == DType.BOOL:
                names.append(f"own.{column}")
            elif dtype == DType.TIMESTAMP:
                names.append(f"own.{column}.age_days")
            elif dtype == DType.STRING:
                names.extend(f"own.{column}={v}" for v in self._one_hot_vocab[column])
        if schema.time_column is not None:
            names.append("own.age_days")
        window_tags = [f"{w}d" for w in self.windows_days] + ["all"]
        for child in self._children:
            base = child.table.name
            for tag in window_tags:
                names.append(f"{base}.count.{tag}")
            names.append(f"{base}.days_since_last")
            names.append(f"{base}.days_since_first")
        for child in self._children:
            base = child.table.name
            for column in child.numeric_columns:
                for tag in window_tags:
                    names.append(f"{base}.{column}.sum.{tag}")
                    names.append(f"{base}.{column}.avg.{tag}")
                    names.append(f"{base}.{column}.max.{tag}")
        for grandchild in self._grandchildren:
            base = f"{grandchild.child.table.name}->{grandchild.table.name}"
            for tag in window_tags:
                names.append(f"{base}.count.{tag}")
            for column in grandchild.numeric_columns:
                names.append(f"{base}.{column}.avg.all")
        return names

    @property
    def num_features(self) -> int:
        """Width of the produced matrix."""
        return len(self.feature_names)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def build(self, entity_keys: np.ndarray, cutoffs: np.ndarray) -> np.ndarray:
        """Feature matrix, one row per (entity key, cutoff) pair.

        Rows for different cutoffs are computed from the database state
        at each row's own cutoff.  Undefined aggregates are NaN (models
        downstream handle missing values).
        """
        entity_keys = np.asarray(entity_keys)
        cutoffs = np.asarray(cutoffs, dtype=np.int64)
        if entity_keys.shape != cutoffs.shape:
            raise ValueError("entity_keys and cutoffs must have equal length")
        out = np.full((len(entity_keys), self.num_features), np.nan)
        slots = np.fromiter(
            (self._key_to_slot[key] for key in entity_keys.tolist()),
            dtype=np.int64,
            count=len(entity_keys),
        )
        for cutoff in np.unique(cutoffs):
            rows = np.flatnonzero(cutoffs == cutoff)
            block = self._build_at_cutoff(int(cutoff))
            out[rows] = block[slots[rows]]
        return out

    def _build_at_cutoff(self, cutoff: int) -> np.ndarray:
        """Features for ALL entities at one cutoff, shape (num_entities, F)."""
        num_entities = self.entity_table.num_rows
        columns: List[np.ndarray] = []
        columns.extend(self._own_columns(cutoff))
        child_row_groups = {}
        for child in self._children:
            counts_block, numerics_block, groups = self._child_columns(child, cutoff, num_entities)
            columns.extend(counts_block)
            child_row_groups[child.table.name] = (child, groups)
            # numeric blocks appended after all counts per the priority order
        # re-walk to preserve ordering: counts (already added), then numerics
        numeric_columns: List[np.ndarray] = []
        for child in self._children:
            _, numerics_block, _ = self._child_columns(child, cutoff, num_entities, counts_only=False)
            numeric_columns.extend(numerics_block)
        columns.extend(numeric_columns)
        for grandchild in self._grandchildren:
            columns.extend(self._grandchild_columns(grandchild, cutoff, num_entities))
        matrix = np.column_stack(columns) if columns else np.zeros((num_entities, 0))
        if matrix.shape[1] != self.num_features:
            raise AssertionError(
                f"feature width mismatch: built {matrix.shape[1]}, expected {self.num_features}"
            )
        return matrix

    def _own_columns(self, cutoff: int) -> List[np.ndarray]:
        columns: List[np.ndarray] = []
        schema = self.entity_table.schema
        for name in schema.feature_columns:
            column = self.entity_table[name]
            dtype = schema.dtype_of(name)
            if dtype in (DType.INT64, DType.FLOAT64):
                values = column.values.astype(np.float64).copy()
                values[column.null_mask()] = np.nan
                columns.append(values)
            elif dtype == DType.BOOL:
                columns.append(np.where(column.null_mask(), np.nan, column.values.astype(np.float64)))
            elif dtype == DType.TIMESTAMP:
                age = (cutoff - column.values.astype(np.float64)) / _DAY
                age[column.null_mask()] = np.nan
                columns.append(age)
            elif dtype == DType.STRING:
                for value in self._one_hot_vocab[name]:
                    columns.append(column.equals(value).astype(np.float64))
        if schema.time_column is not None:
            created = self.entity_table[schema.time_column].values.astype(np.float64)
            columns.append((cutoff - created) / _DAY)
        return columns

    def _window_masks(self, times: np.ndarray, cutoff: int) -> List[np.ndarray]:
        past = times <= cutoff
        masks = []
        for window in self.windows_days:
            masks.append(past & (times > cutoff - window * _DAY))
        masks.append(past)
        return masks

    def _child_groups(self, child: _ChildLink, num_entities: int) -> np.ndarray:
        fk = child.table[child.fk_column]
        groups = np.full(child.table.num_rows, -1, dtype=np.int64)
        valid = ~fk.null_mask()
        for i in np.flatnonzero(valid):
            slot = self._key_to_slot.get(fk.values[i])
            if slot is not None:
                groups[i] = slot
        return groups

    def _child_columns(
        self, child: _ChildLink, cutoff: int, num_entities: int, counts_only: bool = True
    ) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray]:
        times = child.table[child.table.schema.time_column].values.astype(np.float64)
        groups = self._child_groups(child, num_entities)
        masks = self._window_masks(times, cutoff)
        counts_block: List[np.ndarray] = []
        numerics_block: List[np.ndarray] = []
        if counts_only:
            for mask in masks:
                window_groups = np.where(mask, groups, -1)
                counts_block.append(
                    aggregate_grouped_values("count", window_groups, num_entities)
                )
            past_groups = np.where(masks[-1], groups, -1)
            last = aggregate_grouped_values("max", past_groups, num_entities, values=times)
            first = aggregate_grouped_values("min", past_groups, num_entities, values=times)
            counts_block.append((cutoff - last) / _DAY)
            counts_block.append((cutoff - first) / _DAY)
        else:
            for column_name in child.numeric_columns:
                column = child.table[column_name]
                values = column.values.astype(np.float64)
                valid = ~column.null_mask()
                for mask in masks:
                    window_groups = np.where(mask, groups, -1)
                    for func in ("sum", "avg", "max"):
                        numerics_block.append(
                            aggregate_grouped_values(
                                func, window_groups, num_entities, values=values, valid=valid
                            )
                        )
        return counts_block, numerics_block, groups

    def _grandchild_columns(
        self, grandchild: _GrandchildLink, cutoff: int, num_entities: int
    ) -> List[np.ndarray]:
        child = grandchild.child
        child_pk = child.table.schema.primary_key
        child_groups = self._child_groups(child, num_entities)
        child_key_to_entity = {
            key: child_groups[i]
            for i, key in enumerate(child.table[child_pk].values.tolist())
        }
        fk = grandchild.table[grandchild.fk_column]
        groups = np.full(grandchild.table.num_rows, -1, dtype=np.int64)
        valid = ~fk.null_mask()
        for i in np.flatnonzero(valid):
            entity = child_key_to_entity.get(fk.values[i], -1)
            groups[i] = entity
        times = grandchild.table[grandchild.table.schema.time_column].values.astype(np.float64)
        masks = self._window_masks(times, cutoff)
        columns: List[np.ndarray] = []
        for mask in masks:
            window_groups = np.where(mask, groups, -1)
            columns.append(aggregate_grouped_values("count", window_groups, num_entities))
        past_groups = np.where(masks[-1], groups, -1)
        for column_name in grandchild.numeric_columns:
            column = grandchild.table[column_name]
            columns.append(
                aggregate_grouped_values(
                    "avg",
                    past_groups,
                    num_entities,
                    values=column.values.astype(np.float64),
                    valid=~column.null_mask(),
                )
            )
        return columns
