"""Gradient-boosted decision trees from scratch.

A faithful stand-in for the LightGBM/XGBoost baseline:

* **Histogram splits** — each feature is quantile-binned once (up to
  ``max_bins`` bins); split search scans bin boundaries accumulating
  gradient/hessian sums, so each node costs O(features × bins).
* **Second-order boosting** — leaf values are the Newton step
  ``-Σg / (Σh + λ)``, with squared loss for regression and logistic
  loss for binary classification.
* **Shrinkage, subsampling, early stopping** on a validation set.

NaN feature values are routed to their own bin (missing-value support,
matching how the manual-feature baseline produces undefined
aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["DecisionTreeRegressor", "GradientBoostingRegressor", "GradientBoostingClassifier"]

_MISSING_BIN = 0  # NaNs map to bin 0; real values start at bin 1.


class _Binner:
    """Quantile binning shared by all trees of an ensemble."""

    def __init__(self, max_bins: int = 32) -> None:
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.max_bins = max_bins
        self.edges_: List[np.ndarray] = []

    #: Row-count at or below which transform uses one broadcast compare
    #: against the padded edge matrix instead of per-feature
    #: searchsorted — same bins, far fewer Python-level iterations.
    _BROADCAST_ROWS = 256

    def fit(self, x: np.ndarray) -> "_Binner":
        """Compute per-feature quantile edges from training data."""
        self.edges_ = []
        self._matrix = None
        for j in range(x.shape[1]):
            column = x[:, j]
            finite = column[np.isfinite(column)]
            if len(finite) == 0:
                self.edges_.append(np.empty(0))
                continue
            quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
            edges = np.unique(np.quantile(finite, quantiles))
            self.edges_.append(edges)
        return self

    def _edge_matrix(self) -> np.ndarray:
        """Per-feature edges padded to a rectangle with +inf (cached).

        Padding with +inf keeps the ``edge <= value`` count — which is
        exactly ``searchsorted(edges, value, side="right")`` — unchanged.
        """
        matrix = getattr(self, "_matrix", None)
        if matrix is None:
            width = max((len(edges) for edges in self.edges_), default=0)
            matrix = np.full((len(self.edges_), max(width, 1)), np.inf)
            for j, edges in enumerate(self.edges_):
                matrix[j, : len(edges)] = edges
            self._matrix = matrix
        return matrix

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Bin indices, shape (n, features); NaN → bin 0."""
        if not self.edges_:
            raise RuntimeError("binner not fitted")
        n, num_features = x.shape
        if n <= self._BROADCAST_ROWS:
            # Small batches (the serving path) pay mostly per-feature
            # Python overhead in the loop below; one (n, F, E) compare
            # produces identical bins in a single vector pass.
            matrix = self._edge_matrix()
            finite = np.isfinite(x)
            safe = np.where(finite, x, 0.0)
            binned = (matrix[None, :, :] <= safe[:, :, None]).sum(axis=2, dtype=np.int32) + 1
            binned[~finite] = _MISSING_BIN
            return binned
        binned = np.zeros((n, num_features), dtype=np.int32)
        for j in range(num_features):
            column = x[:, j]
            finite = np.isfinite(column)
            binned[finite, j] = (
                np.searchsorted(self.edges_[j], column[finite], side="right") + 1
            )
        return binned

    def num_bins(self, feature: int) -> int:
        """Bins for one feature, including the missing bin."""
        return len(self.edges_[feature]) + 2


@dataclass
class _Node:
    feature: int = -1
    threshold_bin: int = -1  # go left if bin <= threshold_bin
    left: int = -1
    right: int = -1
    value: float = 0.0
    is_leaf: bool = True
    missing_left: bool = True


class DecisionTreeRegressor:
    """A single histogram regression tree fit to (gradient, hessian) pairs.

    Not meant to be used alone for prediction quality — it is the weak
    learner inside the boosting classes — but it exposes the standard
    fit/predict interface on raw targets too (hessian = 1).
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-7,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        self.nodes: List[_Node] = []
        self._binner: Optional[_Binner] = None

    # -- public sklearn-style API on raw targets -----------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Fit to raw targets (squared loss)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._binner = _Binner().fit(x)
        binned = self._binner.transform(x)
        self.fit_binned(binned, self._binner, gradients=-y, hessians=np.ones(len(y)))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict raw targets (requires :meth:`fit`)."""
        if self._binner is None:
            raise RuntimeError("tree was fit via fit_binned; use predict_binned")
        return self.predict_binned(self._binner.transform(np.asarray(x, dtype=np.float64)))

    # -- ensemble-facing API --------------------------------------------
    def fit_binned(
        self,
        binned: np.ndarray,
        binner: _Binner,
        gradients: np.ndarray,
        hessians: np.ndarray,
    ) -> "DecisionTreeRegressor":
        """Fit on pre-binned features to minimize Σ g·f + ½ h·f²."""
        self.nodes = []
        self._flat = None
        self._grow(binned, binner, gradients, hessians, np.arange(len(gradients)), depth=0)
        return self

    def _leaf_value(self, gradients: np.ndarray, hessians: np.ndarray) -> float:
        return float(-gradients.sum() / (hessians.sum() + self.reg_lambda))

    def _grow(self, binned, binner, gradients, hessians, rows, depth) -> int:
        node_index = len(self.nodes)
        self.nodes.append(_Node(value=self._leaf_value(gradients[rows], hessians[rows])))
        if depth >= self.max_depth or len(rows) < 2 * self.min_samples_leaf:
            return node_index
        best = self._best_split(binned, binner, gradients, hessians, rows)
        if best is None:
            return node_index
        feature, threshold_bin, missing_left = best
        feature_bins = binned[rows, feature]
        go_left = feature_bins <= threshold_bin
        if missing_left:
            go_left |= feature_bins == _MISSING_BIN
        else:
            go_left &= feature_bins != _MISSING_BIN
        left_rows, right_rows = rows[go_left], rows[~go_left]
        if len(left_rows) < self.min_samples_leaf or len(right_rows) < self.min_samples_leaf:
            return node_index
        node = self.nodes[node_index]
        node.is_leaf = False
        node.feature = feature
        node.threshold_bin = threshold_bin
        node.missing_left = missing_left
        node.left = self._grow(binned, binner, gradients, hessians, left_rows, depth + 1)
        node.right = self._grow(binned, binner, gradients, hessians, right_rows, depth + 1)
        return node_index

    def _best_split(self, binned, binner, gradients, hessians, rows):
        g = gradients[rows]
        h = hessians[rows]
        total_g, total_h = g.sum(), h.sum()
        parent_score = total_g**2 / (total_h + self.reg_lambda)
        best_gain = self.min_gain
        best = None
        for feature in range(binned.shape[1]):
            bins = binned[rows, feature]
            num_bins = binner.num_bins(feature)
            if num_bins <= 2:
                continue
            g_hist = np.bincount(bins, weights=g, minlength=num_bins)
            h_hist = np.bincount(bins, weights=h, minlength=num_bins)
            n_hist = np.bincount(bins, minlength=num_bins)
            missing_g, missing_h, missing_n = g_hist[0], h_hist[0], n_hist[0]
            # Cumulative over real bins (1..num_bins-1), split after bin b.
            cg = np.cumsum(g_hist[1:])
            ch = np.cumsum(h_hist[1:])
            cn = np.cumsum(n_hist[1:])
            for b in range(len(cg) - 1):
                for missing_left in (True, False):
                    left_g = cg[b] + (missing_g if missing_left else 0.0)
                    left_h = ch[b] + (missing_h if missing_left else 0.0)
                    left_n = cn[b] + (missing_n if missing_left else 0)
                    right_g = total_g - left_g
                    right_h = total_h - left_h
                    right_n = len(rows) - left_n
                    if left_n < self.min_samples_leaf or right_n < self.min_samples_leaf:
                        continue
                    gain = (
                        left_g**2 / (left_h + self.reg_lambda)
                        + right_g**2 / (right_h + self.reg_lambda)
                        - parent_score
                    )
                    if gain > best_gain:
                        best_gain = gain
                        best = (feature, b + 1, missing_left)
        return best

    def flat(self) -> Tuple[np.ndarray, ...]:
        """The node list as parallel arrays for vectorized traversal.

        Leaves are made traversal-safe: their feature is remapped to 0
        and their children point back at themselves, so a descent loop
        can step every row each iteration without a leaf mask — rows
        that reached a leaf simply stay there.  Built lazily after
        fitting (and after unpickling models saved before this cache
        existed) and reused for every predict.
        """
        cached = getattr(self, "_flat", None)
        if cached is None:
            nodes = self.nodes
            is_leaf = np.array([n.is_leaf for n in nodes], dtype=bool)
            self_idx = np.arange(len(nodes), dtype=np.int64)
            cached = (
                np.where(is_leaf, 0, [n.feature for n in nodes]).astype(np.int64),
                np.array([n.threshold_bin for n in nodes], dtype=np.int32),
                np.where(is_leaf, self_idx, [n.left for n in nodes]).astype(np.int64),
                np.where(is_leaf, self_idx, [n.right for n in nodes]).astype(np.int64),
                np.array([n.value for n in nodes], dtype=np.float64),
                is_leaf,
                np.array([n.missing_left for n in nodes], dtype=bool),
            )
            self._flat = cached
        return cached

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Leaf values for pre-binned rows (vectorized descent).

        All rows step down one level per iteration; rows already at a
        leaf self-loop, so ``max_depth`` iterations land everyone.
        """
        feature, threshold, left, right, value, is_leaf, missing_left = self.flat()
        idx = np.zeros(len(binned), dtype=np.int64)
        rows = np.arange(len(binned))
        for _ in range(self.max_depth):
            if is_leaf[idx].all():
                break
            bins = binned[rows, feature[idx]]
            go_left = np.where(bins == _MISSING_BIN, missing_left[idx], bins <= threshold[idx])
            idx = np.where(go_left, left[idx], right[idx])
        return value[idx]

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(node.is_leaf for node in self.nodes)


class _Boosting:
    """Shared boosting machinery; subclasses define the loss."""

    def __init__(
        self,
        num_rounds: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        max_bins: int = 32,
        early_stopping_rounds: Optional[int] = 10,
        seed: int = 0,
    ) -> None:
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.max_bins = max_bins
        self.early_stopping_rounds = early_stopping_rounds
        self.seed = seed
        self.trees_: List[DecisionTreeRegressor] = []
        self.base_score_ = 0.0
        self._binner: Optional[_Binner] = None
        self.best_iteration_: Optional[int] = None
        self._arena: Optional[Tuple[np.ndarray, ...]] = None

    # -- loss interface (overridden) ------------------------------------
    def _base_score(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _grad_hess(self, y: np.ndarray, raw: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _loss(self, y: np.ndarray, raw: np.ndarray) -> float:
        raise NotImplementedError

    # -- training --------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        eval_set: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "_Boosting":
        """Fit with optional validation-based early stopping."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._binner = _Binner(self.max_bins).fit(x)
        binned = self._binner.transform(x)
        self.base_score_ = self._base_score(y)
        raw = np.full(len(y), self.base_score_)
        self.trees_ = []

        val_binned = val_y = None
        val_raw = None
        best_loss = np.inf
        stale = 0
        if eval_set is not None:
            val_x, val_y = eval_set
            val_binned = self._binner.transform(np.asarray(val_x, dtype=np.float64))
            val_raw = np.full(len(val_y), self.base_score_)

        for round_index in range(self.num_rounds):
            gradients, hessians = self._grad_hess(y, raw)
            if self.subsample < 1.0:
                keep = rng.random(len(y)) < self.subsample
                # Zero out non-sampled rows' grad/hess: they don't vote.
                gradients = np.where(keep, gradients, 0.0)
                hessians = np.where(keep, hessians, 0.0)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            tree.fit_binned(binned, self._binner, gradients, hessians)
            update = tree.predict_binned(binned)
            raw = raw + self.learning_rate * update
            self.trees_.append(tree)

            if val_binned is not None:
                val_raw = val_raw + self.learning_rate * tree.predict_binned(val_binned)
                loss = self._loss(val_y, val_raw)
                if loss < best_loss - 1e-9:
                    best_loss = loss
                    self.best_iteration_ = round_index
                    stale = 0
                else:
                    stale += 1
                    if (
                        self.early_stopping_rounds is not None
                        and stale >= self.early_stopping_rounds
                    ):
                        break
        if self.best_iteration_ is not None:
            self.trees_ = self.trees_[: self.best_iteration_ + 1]
        self._arena = None
        return self

    def _ensure_arena(self) -> Optional[Tuple[np.ndarray, ...]]:
        """All trees' nodes concatenated into one arena, plus per-tree roots.

        Lets :meth:`_raw_predict` descend every tree for every row in a
        single (rows × trees) traversal — one numpy pass per depth level
        instead of a Python loop over trees.  Child indices are shifted
        by each tree's offset so they stay valid in the shared arrays.
        """
        arena = getattr(self, "_arena", None)
        if arena is None and self.trees_:
            parts = [tree.flat() for tree in self.trees_]
            sizes = [len(part[4]) for part in parts]
            roots = np.cumsum([0] + sizes[:-1]).astype(np.int64)
            arena = (
                np.concatenate([part[0] for part in parts]),
                np.concatenate([part[1] for part in parts]),
                np.concatenate([part[2] + off for part, off in zip(parts, roots)]),
                np.concatenate([part[3] + off for part, off in zip(parts, roots)]),
                np.concatenate([part[4] for part in parts]),
                np.concatenate([part[6] for part in parts]),
                roots,
            )
            self._arena = arena
        return arena

    def _raw_predict(self, x: np.ndarray) -> np.ndarray:
        if self._binner is None:
            raise RuntimeError("model not fitted")
        binned = self._binner.transform(np.asarray(x, dtype=np.float64))
        arena = self._ensure_arena()
        if arena is None:
            return np.full(len(binned), self.base_score_)
        feature, threshold, left, right, value, missing_left, roots = arena
        idx = np.repeat(roots[None, :], len(binned), axis=0)
        rows = np.arange(len(binned))[:, None]
        for _ in range(self.max_depth):
            bins = binned[rows, feature[idx]]
            go_left = np.where(bins == _MISSING_BIN, missing_left[idx], bins <= threshold[idx])
            idx = np.where(go_left, left[idx], right[idx])
        return self.base_score_ + self.learning_rate * value[idx].sum(axis=1)


class GradientBoostingRegressor(_Boosting):
    """Boosted trees with squared loss."""

    def _base_score(self, y: np.ndarray) -> float:
        return float(y.mean()) if len(y) else 0.0

    def _grad_hess(self, y: np.ndarray, raw: np.ndarray):
        return raw - y, np.ones(len(y))

    def _loss(self, y: np.ndarray, raw: np.ndarray) -> float:
        return float(((y - raw) ** 2).mean())

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted values."""
        return self._raw_predict(x)


class GradientBoostingClassifier(_Boosting):
    """Boosted trees with logistic loss (binary)."""

    def _base_score(self, y: np.ndarray) -> float:
        rate = float(np.clip(y.mean() if len(y) else 0.5, 1e-6, 1 - 1e-6))
        return float(np.log(rate / (1 - rate)))

    def _grad_hess(self, y: np.ndarray, raw: np.ndarray):
        prob = 1.0 / (1.0 + np.exp(-raw))
        return prob - y, prob * (1 - prob)

    def _loss(self, y: np.ndarray, raw: np.ndarray) -> float:
        # Stable logistic loss: softplus(raw) - raw*y.
        return float((np.logaddexp(0.0, raw) - raw * y).mean())

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(positive class), shape (n,)."""
        return 1.0 / (1.0 + np.exp(-self._raw_predict(x)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions at threshold 0.5."""
        return (self.predict_proba(x) > 0.5).astype(np.float64)
