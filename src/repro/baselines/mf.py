"""BPR matrix factorization: the classic collaborative-filtering baseline.

Learns one embedding per user and per item by stochastic gradient
descent on the Bayesian-personalized-ranking objective.  Unlike the
two-tower GNN it has no access to features or temporal context, so it
cold-starts poorly — exactly the comparison Table 4 draws.
"""

from __future__ import annotations


import numpy as np

__all__ = ["BPRMatrixFactorization"]


class BPRMatrixFactorization:
    """Matrix factorization trained with the BPR loss.

    Parameters
    ----------
    num_users, num_items:
        Entity counts (dense integer ids).
    dim:
        Embedding dimension.
    lr, reg:
        SGD learning rate and L2 regularization.
    epochs:
        Passes over the positive pairs.
    seed:
        Random seed for initialization, shuffling, and negatives.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        dim: int = 16,
        lr: float = 0.05,
        reg: float = 0.01,
        epochs: int = 20,
        seed: int = 0,
    ) -> None:
        self.num_users = num_users
        self.num_items = num_items
        self.dim = dim
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        rng = np.random.default_rng(seed)
        self._rng = rng
        self.user_factors = rng.normal(0, 0.1, size=(num_users, dim))
        self.item_factors = rng.normal(0, 0.1, size=(num_items, dim))

    def fit(self, user_ids: np.ndarray, item_ids: np.ndarray) -> "BPRMatrixFactorization":
        """Train on positive (user, item) pairs."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != item_ids.shape:
            raise ValueError("user_ids and item_ids must have equal length")
        n = len(user_ids)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            negatives = self._rng.integers(0, self.num_items, size=n)
            for position in order:
                u = user_ids[position]
                pos = item_ids[position]
                neg = negatives[position]
                user_vec = self.user_factors[u]
                pos_vec = self.item_factors[pos]
                neg_vec = self.item_factors[neg]
                margin = float(user_vec @ (pos_vec - neg_vec))
                # d/dx -log(sigmoid(x)) = -sigmoid(-x)
                coeff = 1.0 / (1.0 + np.exp(min(margin, 500)))
                self.user_factors[u] += self.lr * (coeff * (pos_vec - neg_vec) - self.reg * user_vec)
                self.item_factors[pos] += self.lr * (coeff * user_vec - self.reg * pos_vec)
                self.item_factors[neg] += self.lr * (-coeff * user_vec - self.reg * neg_vec)
        return self

    def score_all(self, user_ids: np.ndarray) -> np.ndarray:
        """Scores of every item for each user: (len(user_ids), num_items)."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        return self.user_factors[user_ids] @ self.item_factors.T
