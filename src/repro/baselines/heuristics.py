"""Trivial reference baselines."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["MajorityClassBaseline", "GlobalMeanBaseline", "PopularityRanker"]


class MajorityClassBaseline:
    """Predicts the training base rate for every example (binary tasks).

    AUROC of this baseline is 0.5 by construction; it anchors the
    classification tables.
    """

    def __init__(self) -> None:
        self.rate_: Optional[float] = None

    def fit(self, y: np.ndarray) -> "MajorityClassBaseline":
        """Record the positive rate."""
        y = np.asarray(y, dtype=np.float64)
        self.rate_ = float(y.mean()) if len(y) else 0.5
        return self

    def predict_proba(self, n: int) -> np.ndarray:
        """Constant probabilities, shape (n,)."""
        if self.rate_ is None:
            raise RuntimeError("baseline not fitted")
        return np.full(n, self.rate_)


class GlobalMeanBaseline:
    """Predicts the training target mean for every example (regression)."""

    def __init__(self) -> None:
        self.mean_: Optional[float] = None

    def fit(self, y: np.ndarray) -> "GlobalMeanBaseline":
        """Record the target mean."""
        y = np.asarray(y, dtype=np.float64)
        self.mean_ = float(y.mean()) if len(y) else 0.0
        return self

    def predict(self, n: int) -> np.ndarray:
        """Constant predictions, shape (n,)."""
        if self.mean_ is None:
            raise RuntimeError("baseline not fitted")
        return np.full(n, self.mean_)


class PopularityRanker:
    """Ranks items by their global interaction count (link tasks)."""

    def __init__(self, num_items: int) -> None:
        self.num_items = num_items
        self.scores_: Optional[np.ndarray] = None

    def fit(self, item_ids: np.ndarray) -> "PopularityRanker":
        """Count interactions per item from training pairs."""
        counts = np.bincount(np.asarray(item_ids, dtype=np.int64), minlength=self.num_items)
        self.scores_ = counts.astype(np.float64)
        return self

    def score_all(self, num_queries: int) -> np.ndarray:
        """Same popularity scores for every query: (num_queries, num_items)."""
        if self.scores_ is None:
            raise RuntimeError("ranker not fitted")
        return np.tile(self.scores_, (num_queries, 1))
