"""Autograd-aware scatter aggregations.

Message passing reduces per-edge message vectors into per-node slots:
``out[dst[e]] += message[e]``.  These functions build the reverse-mode
closure by hand so the operation is a single vectorized
``np.add.at`` / gather instead of a python loop over edges.
"""

from __future__ import annotations


import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["scatter_sum", "scatter_mean", "scatter_max", "segment_softmax"]


def _check(messages: Tensor, index: np.ndarray, num_targets: int) -> np.ndarray:
    index = np.asarray(index, dtype=np.int64)
    if messages.ndim != 2:
        raise ValueError(f"messages must be 2-D (edges, dim), got shape {messages.shape}")
    if index.shape != (messages.shape[0],):
        raise ValueError(
            f"index shape {index.shape} must match number of messages {messages.shape[0]}"
        )
    if index.size and (index.min() < 0 or index.max() >= num_targets):
        raise IndexError(f"scatter index out of range [0, {num_targets})")
    return index


def scatter_sum(messages: Tensor, index: np.ndarray, num_targets: int) -> Tensor:
    """Sum messages into ``num_targets`` slots: ``out[i] = Σ_{e: index[e]=i} m[e]``."""
    index = _check(messages, index, num_targets)
    data = np.zeros((num_targets, messages.shape[1]), dtype=messages.data.dtype)
    np.add.at(data, index, messages.data)

    def backward(grad: np.ndarray) -> None:
        if messages.requires_grad:
            messages._accumulate(np.asarray(grad)[index], owned=True)

    return Tensor._make(data, (messages,), backward)


def scatter_mean(messages: Tensor, index: np.ndarray, num_targets: int) -> Tensor:
    """Average messages per slot; empty slots stay zero."""
    index = _check(messages, index, num_targets)
    counts = np.bincount(index, minlength=num_targets).astype(messages.data.dtype)
    safe_counts = np.maximum(counts, 1.0)
    data = np.zeros((num_targets, messages.shape[1]), dtype=messages.data.dtype)
    np.add.at(data, index, messages.data)
    data /= safe_counts[:, None]

    def backward(grad: np.ndarray) -> None:
        if messages.requires_grad:
            scaled = np.asarray(grad) / safe_counts[:, None]
            messages._accumulate(scaled[index], owned=True)

    return Tensor._make(data, (messages,), backward)


def scatter_max(messages: Tensor, index: np.ndarray, num_targets: int) -> Tensor:
    """Elementwise max per slot; empty slots are zero.

    Gradient flows to every message element attaining the slot maximum
    (split equally among ties).
    """
    index = _check(messages, index, num_targets)
    data = np.full((num_targets, messages.shape[1]), -np.inf, dtype=messages.data.dtype)
    np.maximum.at(data, index, messages.data)
    empty = ~np.isfinite(data)
    data = np.where(empty, 0.0, data)

    def backward(grad: np.ndarray) -> None:
        if not messages.requires_grad:
            return
        grad = np.asarray(grad)
        is_max = (messages.data == data[index]) & ~empty[index]
        tie_counts = np.zeros((num_targets, messages.shape[1]), dtype=messages.data.dtype)
        np.add.at(tie_counts, index, is_max.astype(messages.data.dtype))
        tie_counts = np.maximum(tie_counts, 1.0)
        messages._accumulate(np.where(is_max, grad[index] / tie_counts[index], 0.0), owned=True)

    return Tensor._make(data, (messages,), backward)


def segment_softmax(scores: Tensor, index: np.ndarray, num_targets: int) -> Tensor:
    """Softmax of per-edge scores within each destination segment.

    ``scores`` is (E, 1); edges sharing ``index[e]`` form one segment
    and their outputs sum to 1.  Numerically stabilized by subtracting
    the per-segment maximum.  Built entirely from differentiable ops,
    so gradients flow through attention coefficients.
    """
    index = _check(scores, index, num_targets)
    if scores.shape[1] != 1:
        raise ValueError(f"segment_softmax expects (E, 1) scores, got {scores.shape}")
    # Per-segment max, gathered back to edges (treated as a constant in
    # the backward pass — standard for stabilized softmax).
    seg_max = np.zeros((num_targets, 1), dtype=scores.data.dtype)
    np.maximum.at(seg_max, index, scores.data)
    shifted = scores - Tensor(seg_max[index])
    exp = shifted.exp()
    denominator = scatter_sum(exp, index, num_targets)
    safe = denominator + Tensor(np.where(denominator.data <= 0, 1.0, 0.0).astype(scores.data.dtype))
    return exp / safe.take(index)
