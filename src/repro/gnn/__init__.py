"""Heterogeneous graph neural networks on the numpy autograd substrate.

* :mod:`repro.gnn.scatter` — autograd-aware scatter aggregations
  (sum / mean / max) that implement message passing;
* :mod:`repro.gnn.conv` — relation-wise HeteroSAGE convolution;
* :mod:`repro.gnn.models` — node encoders, the :class:`HeteroGNN`
  predictor, and the two-tower link-prediction model;
* :mod:`repro.gnn.trainer` — mini-batch training with temporal
  neighbor sampling and early stopping.
"""

from repro.gnn.scatter import scatter_max, scatter_mean, scatter_sum, segment_softmax
from repro.gnn.conv import HeteroGATConv, HeteroSAGEConv
from repro.gnn.models import GraphMetadata, HeteroGNN, NodeEncoder, TwoTowerModel
from repro.gnn.trainer import LinkTaskTrainer, NodeTaskTrainer, TrainConfig

__all__ = [
    "scatter_sum",
    "scatter_mean",
    "scatter_max",
    "HeteroSAGEConv",
    "HeteroGATConv",
    "segment_softmax",
    "GraphMetadata",
    "NodeEncoder",
    "HeteroGNN",
    "TwoTowerModel",
    "NodeTaskTrainer",
    "LinkTaskTrainer",
    "TrainConfig",
]
