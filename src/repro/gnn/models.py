"""GNN models: node encoders, the HeteroGNN predictor, and two-tower retrieval."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.gnn.conv import HeteroGATConv, HeteroSAGEConv
from repro.graph.hetero import EdgeType, HeteroGraph, TIME_MIN
from repro.graph.sampler import SampledSubgraph
from repro.nn.layers import Dropout, Embedding, Linear, MLP
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_dtype

__all__ = ["GraphMetadata", "NodeEncoder", "HeteroGNN", "TwoTowerModel"]

_SECONDS_PER_DAY = 86400.0


@dataclass
class GraphMetadata:
    """Shape information a model needs about a graph (no data)."""

    node_types: List[str]
    edge_types: List[EdgeType]
    numeric_dims: Dict[str, int]
    categorical_cardinalities: Dict[str, List[int]]
    incoming_counts: Dict[str, int]

    @classmethod
    def from_graph(cls, graph: HeteroGraph) -> "GraphMetadata":
        """Extract metadata from a built graph (features must be encoded)."""
        numeric_dims = {}
        categorical = {}
        incoming = {}
        for node_type in graph.node_types:
            features = graph.features.get(node_type)
            if features is None:
                numeric_dims[node_type] = 0
                categorical[node_type] = []
            else:
                numeric_dims[node_type] = features.numeric_dim
                categorical[node_type] = [cat.cardinality for cat in features.categorical]
            incoming[node_type] = len(graph.edge_types_into(node_type))
        return cls(
            node_types=list(graph.node_types),
            edge_types=list(graph.edge_types),
            numeric_dims=numeric_dims,
            categorical_cardinalities=categorical,
            incoming_counts=incoming,
        )


#: Periods (days) of the optional Fourier age encoding — daily,
#: weekly, monthly, and yearly rhythms.
_FOURIER_PERIODS_DAYS = (1.0, 7.0, 30.0, 365.0)


def _time_features(
    ctx_times: np.ndarray, node_times: np.ndarray, encoding: str = "log"
) -> np.ndarray:
    """Seed-relative time channels per node instance.

    ``"log"`` (default): ``log1p(age in days)`` plus an is-static flag.
    ``"fourier"``: the log channels plus sin/cos of the age at four
    calendar periods, letting the model express periodicity (weekly
    shopping, seasonal visits) instead of only recency.
    """
    static = node_times == TIME_MIN
    age_seconds = np.where(static, 0.0, ctx_times.astype(np.float64) - node_times.astype(np.float64))
    age_days = np.maximum(age_seconds, 0.0) / _SECONDS_PER_DAY
    channels = [np.log1p(age_days), static.astype(np.float64)]
    if encoding == "fourier":
        for period in _FOURIER_PERIODS_DAYS:
            phase = 2.0 * np.pi * age_days / period
            channels.append(np.sin(phase))
            channels.append(np.cos(phase))
    elif encoding != "log":
        raise ValueError(f"time encoding must be 'log' or 'fourier', got {encoding!r}")
    return np.column_stack(channels)


def _time_feature_dim(encoding: str) -> int:
    if encoding == "fourier":
        return 2 + 2 * len(_FOURIER_PERIODS_DAYS)
    return 2


class NodeEncoder(Module):
    """Encodes raw node features of every type into a shared hidden width.

    Per node type: standardized numerics pass through a Linear,
    categorical codes through per-column embeddings, and the two
    seed-relative time channels through another Linear; contributions
    are summed and passed through ReLU.
    """

    def __init__(
        self,
        metadata: GraphMetadata,
        dim: int,
        rng: np.random.Generator,
        degree_features: bool = True,
        time_encoding: str = "log",
        dtype=None,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.time_encoding = time_encoding
        self.dtype = as_dtype(dtype)
        time_dim = _time_feature_dim(time_encoding)
        self.numeric_linears: Dict[str, Linear] = {}
        self.time_linears: Dict[str, Linear] = {}
        self.degree_linears: Dict[str, Linear] = {}
        self.cat_embeddings: Dict[str, List[Embedding]] = {}
        self.type_bias: Dict[str, Parameter] = {}
        for node_type in metadata.node_types:
            if metadata.numeric_dims[node_type] > 0:
                self.numeric_linears[node_type] = Linear(
                    metadata.numeric_dims[node_type], dim, rng, bias=False, dtype=dtype
                )
            self.time_linears[node_type] = Linear(time_dim, dim, rng, bias=False, dtype=dtype)
            if degree_features and metadata.incoming_counts.get(node_type, 0) > 0:
                self.degree_linears[node_type] = Linear(
                    metadata.incoming_counts[node_type], dim, rng, bias=False, dtype=dtype
                )
            self.cat_embeddings[node_type] = [
                Embedding(cardinality, dim, rng, dtype=dtype)
                for cardinality in metadata.categorical_cardinalities[node_type]
            ]
            self.type_bias[node_type] = Parameter(np.zeros(dim), dtype=dtype)

    def forward(self, subgraph: SampledSubgraph, graph: HeteroGraph) -> Dict[str, Tensor]:
        """Hidden state per node type for all instances in ``subgraph``."""
        hidden: Dict[str, Tensor] = {}
        for node_type in subgraph.node_types:
            orig = subgraph.node_orig(node_type)
            ctx = subgraph.node_ctx_time(node_type)
            state = self.type_bias[node_type] + self.time_linears[node_type](
                Tensor(
                    _time_features(
                        ctx, graph.node_times(node_type)[orig], encoding=self.time_encoding
                    ),
                    dtype=self.dtype,
                )
            )
            degree_linear = self.degree_linears.get(node_type)
            if degree_linear is not None:
                degrees = subgraph.node_degrees(node_type)
                if degrees.shape[1] == degree_linear.in_features:
                    state = state + degree_linear(Tensor(np.log1p(degrees), dtype=self.dtype))
            features = graph.features.get(node_type)
            if features is not None:
                if features.numeric_dim > 0:
                    state = state + self.numeric_linears[node_type](
                        Tensor(features.numeric[orig], dtype=self.dtype)
                    )
                for embedding, cat in zip(self.cat_embeddings[node_type], features.categorical):
                    state = state + embedding(cat.codes[orig])
            hidden[node_type] = state.relu()
        return hidden


class HeteroGNN(Module):
    """Encoder + L HeteroSAGE layers + MLP head over seed nodes.

    ``num_layers=0`` degrades gracefully to a per-node MLP on the
    seed's own features (the "0 hops" point of Figure 1).
    """

    def __init__(
        self,
        metadata: GraphMetadata,
        hidden_dim: int,
        out_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        aggregation: str = "mean",
        shared_weights: bool = False,
        dropout: float = 0.0,
        degree_features: bool = True,
        conv_type: str = "sage",
        time_encoding: str = "log",
        dtype=None,
    ) -> None:
        super().__init__()
        self.metadata = metadata
        self.dtype = as_dtype(dtype)
        self.encoder = NodeEncoder(
            metadata, hidden_dim, rng,
            degree_features=degree_features,
            time_encoding=time_encoding,
            dtype=dtype,
        )
        if conv_type == "sage":
            self.convs = [
                HeteroSAGEConv(
                    metadata.node_types,
                    metadata.edge_types,
                    hidden_dim,
                    rng,
                    aggregation=aggregation,
                    shared_weights=shared_weights,
                    dtype=dtype,
                )
                for _ in range(num_layers)
            ]
        elif conv_type == "gat":
            self.convs = [
                HeteroGATConv(metadata.node_types, metadata.edge_types, hidden_dim, rng, dtype=dtype)
                for _ in range(num_layers)
            ]
        else:
            raise ValueError(f"conv_type must be 'sage' or 'gat', got {conv_type!r}")
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self.head = MLP([hidden_dim, hidden_dim, out_dim], rng, dtype=dtype)

    @property
    def num_layers(self) -> int:
        """Number of message-passing rounds."""
        return len(self.convs)

    def seed_embeddings(self, subgraph: SampledSubgraph, graph: HeteroGraph) -> Tensor:
        """Hidden representation of each seed, before the head."""
        hidden = self.encoder(subgraph, graph)
        for conv in self.convs:
            hidden = conv(hidden, subgraph)
            if self.dropout is not None:
                hidden = {t: self.dropout(h) for t, h in hidden.items()}
        return hidden[subgraph.seed_type].take(subgraph.seed_locals)

    def forward(self, subgraph: SampledSubgraph, graph: HeteroGraph) -> Tensor:
        """Per-seed outputs of shape (num_seeds, out_dim)."""
        return self.head(self.seed_embeddings(subgraph, graph))


class TwoTowerModel(Module):
    """Retrieval model for link prediction (e.g. next-purchase).

    The *query* tower is a :class:`HeteroGNN` over the seed entity's
    temporal neighborhood; the *item* tower combines a learned id
    embedding with the item's encoded features.  Scores are dot
    products, so scoring a query against the full catalogue is one
    matrix multiply.
    """

    def __init__(
        self,
        metadata: GraphMetadata,
        item_type: str,
        num_items: int,
        embed_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        dtype=None,
    ) -> None:
        super().__init__()
        self.item_type = item_type
        self.dtype = as_dtype(dtype)
        self.query_tower = HeteroGNN(
            metadata,
            hidden_dim=embed_dim,
            out_dim=embed_dim,
            num_layers=num_layers,
            rng=rng,
            dropout=dropout,
            dtype=dtype,
        )
        self.item_embedding = Embedding(num_items, embed_dim, rng, dtype=dtype)
        item_numeric = metadata.numeric_dims.get(item_type, 0)
        self.item_feature_linear = (
            Linear(item_numeric, embed_dim, rng, bias=False, dtype=dtype) if item_numeric > 0 else None
        )
        self.item_cat_embeddings = [
            Embedding(cardinality, embed_dim, rng, dtype=dtype)
            for cardinality in metadata.categorical_cardinalities.get(item_type, [])
        ]

    def query_embeddings(self, subgraph: SampledSubgraph, graph: HeteroGraph) -> Tensor:
        """Embed the batch of query seeds."""
        return self.query_tower(subgraph, graph)

    def item_embeddings(self, item_ids: np.ndarray, graph: HeteroGraph) -> Tensor:
        """Embed a set of items (by node index) from ids and features."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        embedding = self.item_embedding(item_ids)
        features = graph.features.get(self.item_type)
        if features is not None:
            if self.item_feature_linear is not None and features.numeric_dim > 0:
                embedding = embedding + self.item_feature_linear(
                    Tensor(features.numeric[item_ids], dtype=self.dtype)
                )
            for emb, cat in zip(self.item_cat_embeddings, features.categorical):
                embedding = embedding + emb(cat.codes[item_ids])
        return embedding

    def score(self, query: Tensor, items: Tensor) -> Tensor:
        """Pairwise scores: (num_queries, num_items)."""
        return query @ items.transpose()

    def score_pairs(self, query: Tensor, items: Tensor) -> Tensor:
        """Row-aligned scores: query[i] · items[i] → shape (n,)."""
        return (query * items).sum(axis=1)
