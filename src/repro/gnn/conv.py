"""Relation-wise heterogeneous GraphSAGE convolution.

One layer updates every node type's hidden state from its incoming
relations:

.. math::

    h_T' = \\sigma\\Big( W^{self}_T h_T
            + \\sum_{(S, r, T)} \\mathrm{agg}_{e \\in r} W_r h_S[src(e)]
            + b_T \\Big)

with a weight matrix per relation (``shared_weights=False``, the
default) or a single weight matrix for all relations (the ablation
variant from DESIGN.md §6.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.gnn.scatter import scatter_max, scatter_mean, scatter_sum, segment_softmax
from repro.graph.hetero import EdgeType
from repro.graph.sampler import SampledSubgraph
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["HeteroSAGEConv", "HeteroGATConv"]

_AGGREGATORS = {"sum": scatter_sum, "mean": scatter_mean, "max": scatter_max}


class HeteroSAGEConv(Module):
    """One heterogeneous message-passing layer.

    Parameters
    ----------
    node_types:
        All node types of the graph.
    edge_types:
        All edge types of the graph (the layer allocates one relation
        weight per entry unless ``shared_weights``).
    dim:
        Hidden width (input and output).
    rng:
        Random generator for initialization.
    aggregation:
        ``"mean"`` (default, degree-robust), ``"sum"``, or ``"max"``.
    shared_weights:
        Use a single message transform for every relation.
    activation:
        Apply ReLU to the output (disable on the last layer if raw
        embeddings are wanted).
    dtype:
        Compute dtype for the layer parameters (default float64).
    """

    def __init__(
        self,
        node_types: Sequence[str],
        edge_types: Sequence[EdgeType],
        dim: int,
        rng: np.random.Generator,
        aggregation: str = "mean",
        shared_weights: bool = False,
        activation: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        if aggregation not in _AGGREGATORS:
            raise ValueError(f"aggregation must be one of {sorted(_AGGREGATORS)}, got {aggregation!r}")
        self.dim = dim
        self.aggregation = aggregation
        self.activation = activation
        self.node_types = list(node_types)
        self.edge_types = list(edge_types)
        self.self_linears: Dict[str, Linear] = {
            node_type: Linear(dim, dim, rng, dtype=dtype) for node_type in node_types
        }
        if shared_weights:
            shared = Linear(dim, dim, rng, bias=False, dtype=dtype)
            self.rel_linears: Dict[str, Linear] = {str(et): shared for et in edge_types}
        else:
            self.rel_linears = {
                str(et): Linear(dim, dim, rng, bias=False, dtype=dtype) for et in edge_types
            }

    def forward(
        self,
        hidden: Dict[str, Tensor],
        subgraph: SampledSubgraph,
    ) -> Dict[str, Tensor]:
        """Apply the layer over the sampled subgraph's edges."""
        aggregate = _AGGREGATORS[self.aggregation]
        incoming: Dict[str, List[Tensor]] = {node_type: [] for node_type in hidden}
        for edge_type in subgraph.edge_types:
            key = str(edge_type)
            if key not in self.rel_linears:
                raise KeyError(f"layer has no weights for edge type {edge_type}")
            src_local, dst_local = subgraph.edges_for(edge_type)
            if len(src_local) == 0:
                continue
            source_hidden = hidden[edge_type.src].take(src_local)
            messages = self.rel_linears[key](source_hidden)
            num_dst = subgraph.num_nodes(edge_type.dst)
            incoming[edge_type.dst].append(aggregate(messages, dst_local, num_dst))

        output: Dict[str, Tensor] = {}
        for node_type, state in hidden.items():
            new_state = self.self_linears[node_type](state)
            for aggregated in incoming.get(node_type, ()):  # sum across relations
                new_state = new_state + aggregated
            output[node_type] = new_state.relu() if self.activation else new_state
        return output


class HeteroGATConv(Module):
    """Attention-based heterogeneous convolution (GAT-style).

    Per relation ``(S, r, T)``, each edge gets an attention score

    .. math::

        e = \\mathrm{LeakyReLU}(a_{src}^T W_r h_{src} + a_{dst}^T W_T h_{dst})

    normalized with a softmax over each destination node's incoming
    edges of that relation; messages are the attention-weighted sum of
    ``W_r h_{src}``.  Relations are then summed into the destination's
    self-transformed state, as in :class:`HeteroSAGEConv`.

    Single-head by design — the benchmark ablation compares inductive
    biases (uniform mean vs learned weights), not capacity.
    """

    def __init__(
        self,
        node_types: Sequence[str],
        edge_types: Sequence[EdgeType],
        dim: int,
        rng: np.random.Generator,
        activation: bool = True,
        negative_slope: float = 0.2,
        dtype=None,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.activation = activation
        self.negative_slope = negative_slope
        self.node_types = list(node_types)
        self.edge_types = list(edge_types)
        self.self_linears: Dict[str, Linear] = {
            node_type: Linear(dim, dim, rng, dtype=dtype) for node_type in node_types
        }
        self.rel_linears: Dict[str, Linear] = {
            str(et): Linear(dim, dim, rng, bias=False, dtype=dtype) for et in edge_types
        }
        self.attn_src: Dict[str, Linear] = {
            str(et): Linear(dim, 1, rng, bias=False, dtype=dtype) for et in edge_types
        }
        self.attn_dst: Dict[str, Linear] = {
            str(et): Linear(dim, 1, rng, bias=False, dtype=dtype) for et in edge_types
        }

    def forward(
        self,
        hidden: Dict[str, Tensor],
        subgraph: SampledSubgraph,
    ) -> Dict[str, Tensor]:
        """Apply attention-weighted message passing over the subgraph."""
        incoming: Dict[str, List[Tensor]] = {node_type: [] for node_type in hidden}
        for edge_type in subgraph.edge_types:
            key = str(edge_type)
            if key not in self.rel_linears:
                raise KeyError(f"layer has no weights for edge type {edge_type}")
            src_local, dst_local = subgraph.edges_for(edge_type)
            if len(src_local) == 0:
                continue
            source_hidden = hidden[edge_type.src].take(src_local)
            messages = self.rel_linears[key](source_hidden)
            dst_hidden = hidden[edge_type.dst].take(dst_local)
            scores = self.attn_src[key](messages) + self.attn_dst[key](
                self.self_linears[edge_type.dst](dst_hidden)
            )
            scores = scores.leaky_relu(self.negative_slope)
            num_dst = subgraph.num_nodes(edge_type.dst)
            alpha = segment_softmax(scores, dst_local, num_dst)
            incoming[edge_type.dst].append(
                scatter_sum(messages * alpha, dst_local, num_dst)
            )

        output: Dict[str, Tensor] = {}
        for node_type, state in hidden.items():
            new_state = self.self_linears[node_type](state)
            for aggregated in incoming.get(node_type, ()):
                new_state = new_state + aggregated
            output[node_type] = new_state.relu() if self.activation else new_state
        return output
