"""Mini-batch training of node-level predictive tasks.

The trainer owns the loop the predictive-query planner compiles to:
shuffle seeds, sample a time-respecting subgraph per batch, forward,
loss, backward, clip, step — with early stopping on validation loss and
best-weight restoration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.gnn.models import HeteroGNN, TwoTowerModel
from repro.graph.hetero import HeteroGraph
from repro.graph.sampler import NeighborSampler
from repro.nn.losses import binary_cross_entropy_with_logits, bpr_loss, cross_entropy, mse_loss
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import no_grad
from repro.obs import get_logger
from repro.obs import trace as obs_trace

__all__ = ["TrainConfig", "NodeTaskTrainer", "LinkTaskTrainer"]

_TASK_TYPES = ("binary", "multiclass", "regression")

_log = get_logger("gnn.trainer")


@dataclass
class TrainConfig:
    """Hyperparameters for :class:`NodeTaskTrainer`."""

    epochs: int = 30
    batch_size: int = 256
    lr: float = 5e-3
    weight_decay: float = 1e-5
    patience: int = 5
    clip_norm: float = 5.0
    seed: int = 0


@dataclass
class _History:
    """Per-epoch training telemetry returned by ``fit``.

    Beyond losses, each epoch records its wall time, its training
    throughput (examples per second), and how many optimizer steps
    activated gradient clipping (pre-clip norm above ``clip_norm``).
    """

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    best_epoch: int = -1
    epoch_seconds: List[float] = field(default_factory=list)
    examples_per_sec: List[float] = field(default_factory=list)
    clip_events: int = 0

    @property
    def total_seconds(self) -> float:
        """Wall time summed over recorded epochs."""
        return float(sum(self.epoch_seconds))


def _record_epoch(
    history: _History, epoch: int, clock_start: float, num_examples: int, clip_events: int
) -> None:
    """Stamp one finished epoch's wall time, throughput, and clip count."""
    elapsed = time.perf_counter() - clock_start
    history.epoch_seconds.append(elapsed)
    history.examples_per_sec.append(num_examples / elapsed if elapsed > 0 else 0.0)
    history.clip_events += int(clip_events)
    if obs_trace.enabled():
        obs_trace.add_counter("train.epochs")
        obs_trace.add_counter("train.examples", num_examples)
        obs_trace.add_counter("train.clip_events", clip_events)
        obs_trace.add_counter("train.seconds", elapsed)
    _log.info(
        "epoch finished",
        extra={
            "epoch": epoch,
            "train_loss": round(history.train_loss[-1], 6) if history.train_loss else None,
            "seconds": round(elapsed, 4),
            "examples_per_sec": round(history.examples_per_sec[-1], 1),
            "clip_events": int(clip_events),
        },
    )


class NodeTaskTrainer:
    """Trains a :class:`~repro.gnn.models.HeteroGNN` on one node task.

    Parameters
    ----------
    model:
        The GNN; its ``out_dim`` must match the task (1 for binary and
        regression, C for multiclass).
    graph:
        The full heterogeneous graph.
    sampler:
        Time-respecting sampler whose depth should equal the model's
        message-passing depth.
    task_type:
        ``"binary"``, ``"multiclass"``, or ``"regression"``.
    config:
        Loop hyperparameters.
    """

    def __init__(
        self,
        model: HeteroGNN,
        graph: HeteroGraph,
        sampler: NeighborSampler,
        task_type: str,
        config: Optional[TrainConfig] = None,
        pos_weight: Optional[float] = None,
    ) -> None:
        if task_type not in _TASK_TYPES:
            raise ValueError(f"task_type must be one of {_TASK_TYPES}, got {task_type!r}")
        self.model = model
        self.graph = graph
        self.sampler = sampler
        self.task_type = task_type
        self.config = config or TrainConfig()
        #: Weight on the positive-class BCE term (binary tasks only).
        self.pos_weight = pos_weight
        self.history = _History()
        self._rng = np.random.default_rng(self.config.seed)
        self._target_mean = 0.0
        self._target_std = 1.0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        seed_type: str,
        train_ids: np.ndarray,
        train_times: np.ndarray,
        train_labels: np.ndarray,
        val_ids: Optional[np.ndarray] = None,
        val_times: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
    ) -> _History:
        """Train with early stopping; returns the loss history.

        Regression targets are standardized with train statistics (and
        de-standardized at prediction time).
        """
        train_labels = self._prepare_targets(train_labels, fit=True)
        if val_labels is not None:
            val_labels = self._prepare_targets(val_labels, fit=False)
        optimizer = Adam(
            self.model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        best_val = np.inf
        best_state = self.model.state_dict()
        epochs_without_improvement = 0

        for epoch in range(self.config.epochs):
            self.model.train()
            epoch_clock = time.perf_counter()
            clip_events = 0
            order = self._rng.permutation(len(train_ids))
            epoch_losses = []
            for start in range(0, len(order), self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                loss = self._batch_loss(
                    seed_type, train_ids[batch], train_times[batch], train_labels[batch]
                )
                optimizer.zero_grad()
                loss.backward()
                norm = clip_grad_norm(self.model.parameters(), self.config.clip_norm)
                clip_events += norm > self.config.clip_norm
                optimizer.step()
                epoch_losses.append(loss.item())
            self.history.train_loss.append(float(np.mean(epoch_losses)))
            _record_epoch(self.history, epoch, epoch_clock, len(train_ids), clip_events)

            if val_ids is None:
                continue
            val_loss = self._evaluate_loss(seed_type, val_ids, val_times, val_labels)
            self.history.val_loss.append(val_loss)
            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_state = self.model.state_dict()
                self.history.best_epoch = epoch
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.config.patience:
                    break

        if val_ids is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return self.history

    def _prepare_targets(self, labels: np.ndarray, fit: bool) -> np.ndarray:
        if self.task_type == "multiclass":
            return np.asarray(labels, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.float64)
        if self.task_type == "regression":
            if fit:
                self._target_mean = float(labels.mean())
                self._target_std = float(labels.std()) or 1.0
            return (labels - self._target_mean) / self._target_std
        return labels

    def _batch_loss(self, seed_type, ids, times, labels):
        subgraph = self.sampler.sample(seed_type, ids, times)
        outputs = self.model(subgraph, self.graph)
        if self.task_type == "binary":
            return binary_cross_entropy_with_logits(
                outputs.reshape(len(ids)), labels, pos_weight=self.pos_weight
            )
        if self.task_type == "multiclass":
            return cross_entropy(outputs, labels)
        return mse_loss(outputs.reshape(len(ids)), labels)

    def _evaluate_loss(self, seed_type, ids, times, labels) -> float:
        self.model.eval()
        losses = []
        weights = []
        with no_grad():
            for start in range(0, len(ids), self.config.batch_size):
                stop = start + self.config.batch_size
                loss = self._batch_loss(seed_type, ids[start:stop], times[start:stop], labels[start:stop])
                losses.append(loss.item())
                weights.append(min(stop, len(ids)) - start)
        return float(np.average(losses, weights=weights))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, seed_type: str, ids: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Model predictions for the given seeds.

        Binary → probability of the positive class, shape (n,).
        Multiclass → class probabilities, shape (n, C).
        Regression → de-standardized values, shape (n,).
        """
        self.model.eval()
        # Deterministic inference: prediction must not depend on how many
        # random draws training consumed (important for save/load parity).
        self.sampler.rng = np.random.default_rng(self.config.seed + 9999)
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(ids), self.config.batch_size):
                stop = start + self.config.batch_size
                subgraph = self.sampler.sample(seed_type, ids[start:stop], times[start:stop])
                raw = self.model(subgraph, self.graph)
                if self.task_type == "binary":
                    outputs.append(raw.reshape(len(raw)).sigmoid().data)
                elif self.task_type == "multiclass":
                    outputs.append(raw.softmax(axis=-1).data)
                else:
                    outputs.append(
                        raw.reshape(len(raw)).data * self._target_std + self._target_mean
                    )
        return np.concatenate(outputs) if outputs else np.empty(0)


class LinkTaskTrainer:
    """Trains a :class:`~repro.gnn.models.TwoTowerModel` with BPR loss.

    Training examples are (query entity, seed time, positive item)
    triples; each step samples ``num_negatives`` uniform negative items
    per positive and minimizes the Bayesian-personalized-ranking loss
    between the positive score and each negative score.
    """

    def __init__(
        self,
        model: TwoTowerModel,
        graph: HeteroGraph,
        sampler: NeighborSampler,
        config: Optional[TrainConfig] = None,
        num_negatives: int = 4,
    ) -> None:
        self.model = model
        self.graph = graph
        self.sampler = sampler
        self.config = config or TrainConfig()
        self.num_negatives = num_negatives
        self.history = _History()
        self._rng = np.random.default_rng(self.config.seed)
        self._num_items = graph.num_nodes(model.item_type)

    def fit(
        self,
        seed_type: str,
        query_ids: np.ndarray,
        query_times: np.ndarray,
        pos_item_ids: np.ndarray,
        val_query_ids: Optional[np.ndarray] = None,
        val_query_times: Optional[np.ndarray] = None,
        val_pos_item_ids: Optional[np.ndarray] = None,
    ) -> _History:
        """Train on positive (query, item) pairs with sampled negatives."""
        optimizer = Adam(
            self.model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        best_val = np.inf
        best_state = self.model.state_dict()
        stale = 0
        for epoch in range(self.config.epochs):
            self.model.train()
            epoch_clock = time.perf_counter()
            clip_events = 0
            order = self._rng.permutation(len(query_ids))
            losses = []
            for start in range(0, len(order), self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                loss = self._batch_loss(
                    seed_type, query_ids[batch], query_times[batch], pos_item_ids[batch]
                )
                optimizer.zero_grad()
                loss.backward()
                norm = clip_grad_norm(self.model.parameters(), self.config.clip_norm)
                clip_events += norm > self.config.clip_norm
                optimizer.step()
                losses.append(loss.item())
            self.history.train_loss.append(float(np.mean(losses)))
            _record_epoch(self.history, epoch, epoch_clock, len(query_ids), clip_events)

            if val_query_ids is None:
                continue
            val_loss = self._evaluate_loss(
                seed_type, val_query_ids, val_query_times, val_pos_item_ids
            )
            self.history.val_loss.append(val_loss)
            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_state = self.model.state_dict()
                self.history.best_epoch = epoch
                stale = 0
            else:
                stale += 1
                if stale >= self.config.patience:
                    break
        if val_query_ids is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return self.history

    def _batch_loss(self, seed_type, query_ids, query_times, pos_items):
        subgraph = self.sampler.sample(seed_type, query_ids, query_times)
        queries = self.model.query_embeddings(subgraph, self.graph)
        pos_embed = self.model.item_embeddings(pos_items, self.graph)
        pos_scores = self.model.score_pairs(queries, pos_embed)
        total = None
        for _ in range(self.num_negatives):
            negatives = self._rng.integers(0, self._num_items, size=len(query_ids))
            neg_embed = self.model.item_embeddings(negatives, self.graph)
            neg_scores = self.model.score_pairs(queries, neg_embed)
            term = bpr_loss(pos_scores, neg_scores)
            total = term if total is None else total + term
        return total * (1.0 / self.num_negatives)

    def _evaluate_loss(self, seed_type, query_ids, query_times, pos_items) -> float:
        self.model.eval()
        losses, weights = [], []
        with no_grad():
            for start in range(0, len(query_ids), self.config.batch_size):
                stop = start + self.config.batch_size
                loss = self._batch_loss(
                    seed_type,
                    query_ids[start:stop],
                    query_times[start:stop],
                    pos_items[start:stop],
                )
                losses.append(loss.item())
                weights.append(min(stop, len(query_ids)) - start)
        return float(np.average(losses, weights=weights))

    def score_against_items(
        self,
        seed_type: str,
        query_ids: np.ndarray,
        query_times: np.ndarray,
        item_ids: np.ndarray,
    ) -> np.ndarray:
        """Score every query against every item: (num_queries, num_items)."""
        self.model.eval()
        # Deterministic inference (see NodeTaskTrainer.predict).
        self.sampler.rng = np.random.default_rng(self.config.seed + 9999)
        blocks: List[np.ndarray] = []
        with no_grad():
            items = self.model.item_embeddings(item_ids, self.graph)
            for start in range(0, len(query_ids), self.config.batch_size):
                stop = start + self.config.batch_size
                subgraph = self.sampler.sample(
                    seed_type, query_ids[start:stop], query_times[start:stop]
                )
                queries = self.model.query_embeddings(subgraph, self.graph)
                blocks.append(self.model.score(queries, items).data)
        if not blocks:
            return np.zeros((0, len(item_ids)))
        return np.vstack(blocks)
