"""Mini-batch training of node-level predictive tasks.

The trainer owns the loop the predictive-query planner compiles to:
shuffle seeds, sample a time-respecting subgraph per batch, forward,
loss, backward, clip, step — with early stopping on validation loss and
best-weight restoration.

Both trainers run their epochs through one shared fault-tolerant
driver (:class:`_ResilientLoop`):

* every optimizer step is watched by a divergence guard — a NaN/inf
  loss or an exploding pre-clip gradient norm restores the last good
  epoch snapshot, backs off the learning rate, and replays the epoch,
  a bounded number of times before raising
  :class:`~repro.resilience.DivergenceError`;
* with a configured ``checkpoint_dir``, every epoch commits an atomic,
  checksummed checkpoint capturing weights, best weights, optimizer
  moments, and **all RNG states** (trainer shuffle/negative-sampling,
  neighbor sampler, and any model dropout generators) — so a killed
  run resumed with ``resume=True`` replays the remaining epochs
  bit-identically to an uninterrupted run;
* a cooperative :class:`~repro.resilience.Deadline` may be passed to
  ``fit``; it is checked at batch boundaries so stage budgets can stop
  a run mid-epoch.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.graph.parallel import ParallelSampleLoader

from repro.gnn.models import HeteroGNN, TwoTowerModel
from repro.graph.hetero import HeteroGraph
from repro.graph.sampler import NeighborSampler
from repro.nn.losses import binary_cross_entropy_with_logits, bpr_loss, cross_entropy, mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.obs import get_logger, get_registry
from repro.obs import trace as obs_trace
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import corrupt_value, fault_point
from repro.resilience.guards import DivergenceGuard
from repro.resilience.retry import Deadline

__all__ = ["TrainConfig", "NodeTaskTrainer", "LinkTaskTrainer"]

_TASK_TYPES = ("binary", "multiclass", "regression")

_log = get_logger("gnn.trainer")


@dataclass
class TrainConfig:
    """Hyperparameters for :class:`NodeTaskTrainer`."""

    epochs: int = 30
    batch_size: int = 256
    lr: float = 5e-3
    weight_decay: float = 1e-5
    patience: int = 5
    clip_norm: float = 5.0
    seed: int = 0
    #: Directory for per-epoch checkpoints; None disables them.
    checkpoint_dir: Optional[str] = None
    #: Commit a checkpoint every N epochs (the in-memory divergence
    #: restore point is still refreshed every epoch).
    checkpoint_every: int = 1
    #: Resume from the latest checkpoint in ``checkpoint_dir`` if any.
    resume: bool = False
    #: Divergence recoveries (restore + LR backoff) before failing.
    divergence_recoveries: int = 2
    #: LR multiplier applied on each divergence recovery.
    lr_backoff: float = 0.5
    #: Pre-clip gradient norms above this count as divergence.
    grad_norm_limit: float = 1e6
    #: Sampling worker processes (0 = sample in-process).  Takes
    #: effect through the loader the planner attaches to the trainer.
    num_workers: int = 0
    #: Batches kept in flight beyond one per worker.
    prefetch_batches: int = 2
    #: Whether that loader serves workers from the shared-memory CSR
    #: graph store (zero-copy) or plain fork inheritance.
    shared_graph: bool = True
    #: Batch size for no-grad evaluation/prediction.  Inference builds
    #: no backward graph, so it can usually run much larger batches
    #: than training; ``None`` falls back to ``batch_size``.
    infer_batch_size: Optional[int] = None

    @property
    def effective_infer_batch_size(self) -> int:
        """Batch size used by evaluation/prediction paths."""
        return self.infer_batch_size or self.batch_size


@dataclass
class _History:
    """Per-epoch training telemetry returned by ``fit``.

    Beyond losses, each epoch records its wall time, its training
    throughput (examples per second), and how many optimizer steps
    activated gradient clipping (pre-clip norm above ``clip_norm``).
    """

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    best_epoch: int = -1
    epoch_seconds: List[float] = field(default_factory=list)
    examples_per_sec: List[float] = field(default_factory=list)
    clip_events: int = 0
    #: Divergence recoveries performed during this fit.
    divergence_recoveries: int = 0
    #: Epoch the run resumed from (0 = fresh start).
    resumed_from_epoch: int = 0

    @property
    def total_seconds(self) -> float:
        """Wall time summed over recorded epochs."""
        return float(sum(self.epoch_seconds))


def _record_epoch(
    history: _History, epoch: int, clock_start: float, num_examples: int, clip_events: int
) -> None:
    """Stamp one finished epoch's wall time, throughput, and clip count."""
    elapsed = time.perf_counter() - clock_start
    history.epoch_seconds.append(elapsed)
    history.examples_per_sec.append(num_examples / elapsed if elapsed > 0 else 0.0)
    history.clip_events += int(clip_events)
    if obs_trace.enabled():
        obs_trace.add_counter("train.epochs")
        obs_trace.add_counter("train.examples", num_examples)
        obs_trace.add_counter("train.clip_events", clip_events)
        obs_trace.add_counter("train.seconds", elapsed)
    _log.info(
        "epoch finished",
        extra={
            "epoch": epoch,
            "train_loss": round(history.train_loss[-1], 6) if history.train_loss else None,
            "seconds": round(elapsed, 4),
            "examples_per_sec": round(history.examples_per_sec[-1], 1),
            "clip_events": int(clip_events),
        },
    )


def _epoch_batches(
    trainer, seed_type: str, ids: np.ndarray, times: np.ndarray, order: np.ndarray
) -> Iterator[Tuple[np.ndarray, "SampledSubgraph"]]:
    """Yield ``(batch_indices, subgraph)`` for one shuffled epoch.

    With a loader attached, sampling runs on worker processes and
    overlaps the training compute of earlier batches; otherwise each
    batch samples in-process right before its forward pass.  Both
    paths produce identical subgraphs whenever the sampler follows the
    deterministic contract of :mod:`repro.graph.cache`.
    """
    batch_size = trainer.config.batch_size
    batches = [order[start : start + batch_size] for start in range(0, len(order), batch_size)]
    if trainer.loader is None:
        for batch in batches:
            yield batch, trainer.sampler.sample(seed_type, ids[batch], times[batch])
    else:
        yield from trainer.loader.iter_epoch(seed_type, ids, times, batches)


class _Diverged(Exception):
    """Internal signal: the current epoch hit a divergence condition."""

    def __init__(self, reason: str, value: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.value = float(value)


class _ResilientLoop:
    """The shared epoch driver: early stopping, guards, checkpoints, resume.

    ``run_epoch(epoch)`` trains one epoch and returns
    ``(mean_loss, clip_events)``, raising :class:`_Diverged` on a
    divergence condition *before* the offending optimizer step is
    applied.  ``run_val()`` (optional) returns the validation loss.
    """

    CHECKPOINT_SLOT = "train"

    def __init__(
        self,
        trainer,
        optimizer: Adam,
        num_examples: int,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self.trainer = trainer
        self.optimizer = optimizer
        self.num_examples = num_examples
        self.deadline = deadline
        cfg = trainer.config
        self.guard = DivergenceGuard(
            max_recoveries=cfg.divergence_recoveries,
            lr_factor=cfg.lr_backoff,
            grad_norm_limit=cfg.grad_norm_limit,
        )
        self.ckpt = CheckpointManager(cfg.checkpoint_dir) if cfg.checkpoint_dir else None
        self.best_val = float("inf")
        self.best_state = trainer.model.state_dict()
        self.stale = 0
        self.current_lr = optimizer.lr

    # -- RNG plumbing ---------------------------------------------------
    def _generators(self) -> List[np.random.Generator]:
        """Every generator whose draws shape training, in a stable order."""
        found: List[np.random.Generator] = [self.trainer._rng]
        sampler_rng = getattr(self.trainer.sampler, "rng", None)
        if isinstance(sampler_rng, np.random.Generator):
            found.append(sampler_rng)
        for module in self.trainer.model.modules():
            for attr in ("rng", "_rng"):
                candidate = getattr(module, attr, None)
                if isinstance(candidate, np.random.Generator):
                    found.append(candidate)
        unique: List[np.random.Generator] = []
        seen = set()
        for gen in found:
            if id(gen) not in seen:
                seen.add(id(gen))
                unique.append(gen)
        return unique

    # -- Snapshot / restore ---------------------------------------------
    def _snapshot(self, next_epoch: int) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        arrays: Dict[str, np.ndarray] = {}
        for name, value in self.trainer.model.state_dict().items():
            arrays[f"model.{name}"] = value
        for name, value in self.best_state.items():
            arrays[f"best.{name}"] = np.asarray(value).copy()
        for idx, moment in self.optimizer._m.items():
            arrays[f"opt.m.{idx}"] = moment.copy()
        for idx, moment in self.optimizer._v.items():
            arrays[f"opt.v.{idx}"] = moment.copy()
        history = self.trainer.history
        meta: Dict[str, Any] = {
            "next_epoch": next_epoch,
            "adam_t": self.optimizer._t,
            "lr": self.optimizer.lr,
            "best_val": self.best_val,
            "best_epoch": history.best_epoch,
            "stale": self.stale,
            "recoveries": self.guard.recoveries,
            "history": {
                "train_loss": list(history.train_loss),
                "val_loss": list(history.val_loss),
                "epoch_seconds": list(history.epoch_seconds),
                "examples_per_sec": list(history.examples_per_sec),
                "clip_events": int(history.clip_events),
            },
            "rng_states": [gen.bit_generator.state for gen in self._generators()],
            "target_mean": getattr(self.trainer, "_target_mean", None),
            "target_std": getattr(self.trainer, "_target_std", None),
        }
        return arrays, meta

    def _restore(self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> None:
        model_state = {
            name[len("model."):]: value for name, value in arrays.items()
            if name.startswith("model.")
        }
        self.trainer.model.load_state_dict(model_state)
        self.best_state = {
            name[len("best."):]: value.copy() for name, value in arrays.items()
            if name.startswith("best.")
        }
        self.optimizer._m = {
            int(name[len("opt.m."):]): value.copy() for name, value in arrays.items()
            if name.startswith("opt.m.")
        }
        self.optimizer._v = {
            int(name[len("opt.v."):]): value.copy() for name, value in arrays.items()
            if name.startswith("opt.v.")
        }
        self.optimizer._t = int(meta["adam_t"])
        self.optimizer.lr = float(meta["lr"])
        self.best_val = float(meta["best_val"])
        self.stale = int(meta["stale"])
        history = self.trainer.history
        saved = meta["history"]
        history.train_loss[:] = [float(v) for v in saved["train_loss"]]
        history.val_loss[:] = [float(v) for v in saved["val_loss"]]
        history.epoch_seconds[:] = [float(v) for v in saved["epoch_seconds"]]
        history.examples_per_sec[:] = [float(v) for v in saved["examples_per_sec"]]
        history.clip_events = int(saved["clip_events"])
        history.best_epoch = int(meta["best_epoch"])
        generators = self._generators()
        states = meta["rng_states"]
        if len(generators) != len(states):
            raise ValueError(
                f"checkpoint has {len(states)} RNG states but the trainer "
                f"exposes {len(generators)} generators — model architecture changed?"
            )
        for gen, state in zip(generators, states):
            gen.bit_generator.state = state
        if meta.get("target_mean") is not None:
            self.trainer._target_mean = float(meta["target_mean"])
            self.trainer._target_std = float(meta["target_std"])

    # -- Driver ----------------------------------------------------------
    def run(
        self,
        run_epoch: Callable[[int], Tuple[float, int]],
        run_val: Optional[Callable[[], float]],
    ) -> None:
        cfg = self.trainer.config
        history = self.trainer.history
        start_epoch = 0
        if self.ckpt is not None and cfg.resume and self.ckpt.has(self.CHECKPOINT_SLOT):
            arrays, meta = self.ckpt.load(self.CHECKPOINT_SLOT)
            self._restore(arrays, meta)
            self.guard.recoveries = int(meta.get("recoveries", 0))
            self.current_lr = self.optimizer.lr
            start_epoch = int(meta["next_epoch"])
            history.resumed_from_epoch = start_epoch
            _log.info(
                "resumed from checkpoint",
                extra={"checkpoint_dir": cfg.checkpoint_dir, "next_epoch": start_epoch},
            )
        # The divergence restore point; refreshed after every good epoch.
        last_good = self._snapshot(next_epoch=start_epoch)

        epoch = start_epoch
        stopped_early = False
        while epoch < cfg.epochs and not stopped_early:
            if self.deadline is not None:
                self.deadline.check("trainer.epoch")
            epoch_clock = time.perf_counter()
            try:
                mean_loss, clip_events = run_epoch(epoch)
            except _Diverged as div:
                self.guard.record_recovery(div.reason, epoch, div.value)
                history.divergence_recoveries = self.guard.recoveries
                self.current_lr *= cfg.lr_backoff
                self._restore(*last_good)
                self.optimizer.lr = self.current_lr
                get_registry().counter("resilience.divergence_recoveries").inc()
                obs_trace.add_counter("train.divergence_recoveries")
                _log.warning(
                    "divergence detected; restored last good state and backed off LR",
                    extra={"epoch": epoch, "reason": div.reason, "value": div.value,
                           "lr": self.optimizer.lr, "recoveries": self.guard.recoveries},
                )
                continue  # replay the same epoch at the reduced LR
            history.train_loss.append(mean_loss)
            _record_epoch(history, epoch, epoch_clock, self.num_examples, clip_events)

            if run_val is not None:
                val_loss = run_val()
                history.val_loss.append(val_loss)
                if math.isnan(val_loss):
                    # nan < best is always False, so NaN could silently
                    # masquerade as "no improvement" forever; make it
                    # explicit and visible.
                    _log.warning(
                        "validation loss is NaN; counting as no improvement",
                        extra={"epoch": epoch},
                    )
                    improved = False
                else:
                    improved = val_loss < self.best_val - 1e-6
                if improved:
                    self.best_val = val_loss
                    self.best_state = self.trainer.model.state_dict()
                    history.best_epoch = epoch
                    self.stale = 0
                else:
                    self.stale += 1
                    if self.stale >= cfg.patience:
                        stopped_early = True

            last_good = self._snapshot(next_epoch=epoch + 1)
            if self.ckpt is not None and (
                (epoch + 1) % max(cfg.checkpoint_every, 1) == 0
                or stopped_early
                or epoch + 1 == cfg.epochs
            ):
                self.ckpt.save(self.CHECKPOINT_SLOT, *last_good)
            fault_point("trainer.epoch")
            epoch += 1

        if run_val is not None:
            self.trainer.model.load_state_dict(self.best_state)
        self.trainer.model.eval()


class NodeTaskTrainer:
    """Trains a :class:`~repro.gnn.models.HeteroGNN` on one node task.

    Parameters
    ----------
    model:
        The GNN; its ``out_dim`` must match the task (1 for binary and
        regression, C for multiclass).
    graph:
        The full heterogeneous graph.
    sampler:
        Time-respecting sampler whose depth should equal the model's
        message-passing depth.
    task_type:
        ``"binary"``, ``"multiclass"``, or ``"regression"``.
    config:
        Loop hyperparameters.
    """

    def __init__(
        self,
        model: HeteroGNN,
        graph: HeteroGraph,
        sampler: NeighborSampler,
        task_type: str,
        config: Optional[TrainConfig] = None,
        pos_weight: Optional[float] = None,
        loader: Optional["ParallelSampleLoader"] = None,
    ) -> None:
        if task_type not in _TASK_TYPES:
            raise ValueError(f"task_type must be one of {_TASK_TYPES}, got {task_type!r}")
        self.model = model
        self.graph = graph
        self.sampler = sampler
        self.task_type = task_type
        self.config = config or TrainConfig()
        #: Weight on the positive-class BCE term (binary tasks only).
        self.pos_weight = pos_weight
        #: Optional parallel/prefetching batch source for training
        #: epochs; when None, batches sample in-process via ``sampler``.
        self.loader = loader
        self.history = _History()
        self._rng = np.random.default_rng(self.config.seed)
        self._target_mean = 0.0
        self._target_std = 1.0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        seed_type: str,
        train_ids: np.ndarray,
        train_times: np.ndarray,
        train_labels: np.ndarray,
        val_ids: Optional[np.ndarray] = None,
        val_times: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
        deadline: Optional[Deadline] = None,
    ) -> _History:
        """Train with early stopping; returns the loss history.

        Regression targets are standardized with train statistics (and
        de-standardized at prediction time).
        """
        train_labels = self._prepare_targets(train_labels, fit=True)
        if val_labels is not None:
            val_labels = self._prepare_targets(val_labels, fit=False)
        optimizer = Adam(
            self.model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        loop = _ResilientLoop(self, optimizer, num_examples=len(train_ids), deadline=deadline)

        def run_epoch(epoch: int) -> Tuple[float, int]:
            self.model.train()
            clip_events = 0
            order = self._rng.permutation(len(train_ids))
            epoch_losses = []
            for batch, subgraph in _epoch_batches(self, seed_type, train_ids, train_times, order):
                if deadline is not None:
                    deadline.check("trainer.step")
                fault_point("trainer.step")
                loss = self._batch_loss(
                    seed_type, train_ids[batch], train_times[batch], train_labels[batch],
                    subgraph=subgraph,
                )
                loss_value = corrupt_value("trainer.loss", float(loss.item()))
                reason = loop.guard.check_loss(loss_value)
                if reason is not None:
                    raise _Diverged(reason, loss_value)
                optimizer.zero_grad()
                loss.backward()
                norm = optimizer.gather_and_clip(self.config.clip_norm)
                reason = loop.guard.check_grad_norm(norm)
                if reason is not None:
                    raise _Diverged(reason, norm)
                clip_events += norm > self.config.clip_norm
                optimizer.step()
                epoch_losses.append(loss_value)
            return float(np.mean(epoch_losses)), clip_events

        run_val = None
        if val_ids is not None:
            run_val = lambda: self._evaluate_loss(seed_type, val_ids, val_times, val_labels)
        loop.run(run_epoch, run_val)
        return self.history

    def _prepare_targets(self, labels: np.ndarray, fit: bool) -> np.ndarray:
        if self.task_type == "multiclass":
            return np.asarray(labels, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.float64)
        if self.task_type == "regression":
            if fit:
                self._target_mean = float(labels.mean())
                self._target_std = float(labels.std()) or 1.0
            return (labels - self._target_mean) / self._target_std
        return labels

    def _batch_loss(self, seed_type, ids, times, labels, subgraph=None):
        if subgraph is None:
            subgraph = self.sampler.sample(seed_type, ids, times)
        outputs = self.model(subgraph, self.graph)
        if self.task_type == "binary":
            return binary_cross_entropy_with_logits(
                outputs.reshape(len(ids)), labels, pos_weight=self.pos_weight
            )
        if self.task_type == "multiclass":
            return cross_entropy(outputs, labels)
        return mse_loss(outputs.reshape(len(ids)), labels)

    def _evaluate_loss(self, seed_type, ids, times, labels) -> float:
        self.model.eval()
        losses = []
        weights = []
        batch_size = self.config.effective_infer_batch_size
        with no_grad():
            for start in range(0, len(ids), batch_size):
                stop = start + batch_size
                loss = self._batch_loss(seed_type, ids[start:stop], times[start:stop], labels[start:stop])
                losses.append(loss.item())
                weights.append(min(stop, len(ids)) - start)
        return float(np.average(losses, weights=weights))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, seed_type: str, ids: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Model predictions for the given seeds.

        Binary → probability of the positive class, shape (n,).
        Multiclass → class probabilities, shape (n, C).
        Regression → de-standardized values, shape (n,).
        """
        self.model.eval()
        # Deterministic inference: prediction must not depend on how many
        # random draws training consumed (important for save/load parity).
        self.sampler.rng = np.random.default_rng(self.config.seed + 9999)
        outputs: List[np.ndarray] = []
        batch_size = self.config.effective_infer_batch_size
        with no_grad():
            for start in range(0, len(ids), batch_size):
                stop = start + batch_size
                subgraph = self.sampler.sample(seed_type, ids[start:stop], times[start:stop])
                raw = self.model(subgraph, self.graph)
                if self.task_type == "binary":
                    outputs.append(raw.reshape(len(raw)).sigmoid().data)
                elif self.task_type == "multiclass":
                    outputs.append(raw.softmax(axis=-1).data)
                else:
                    outputs.append(
                        raw.reshape(len(raw)).data * self._target_std + self._target_mean
                    )
        return np.concatenate(outputs) if outputs else np.empty(0)

    def export_scores(self, seed_type: str, ids: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Raw pre-activation model scores, shape (n,) — the hybrid export.

        Binary → logits (no sigmoid); regression → standardized outputs
        (no de-normalization).  Score stacking (the GBDT→GNN hybrid in
        :mod:`repro.pql.router`) wants the model's unsquashed margin as
        a feature column: a downstream stacker can re-calibrate it,
        whereas a saturated probability throws resolution away.
        Sampling follows the same deterministic-inference contract as
        :meth:`predict`, so exported scores are reproducible.
        """
        if self.task_type == "multiclass":
            raise ValueError("export_scores supports binary and regression tasks only")
        self.model.eval()
        self.sampler.rng = np.random.default_rng(self.config.seed + 9999)
        outputs: List[np.ndarray] = []
        batch_size = self.config.effective_infer_batch_size
        with no_grad():
            for start in range(0, len(ids), batch_size):
                stop = start + batch_size
                subgraph = self.sampler.sample(seed_type, ids[start:stop], times[start:stop])
                raw = self.model(subgraph, self.graph)
                outputs.append(raw.reshape(len(raw)).data.copy())
        return np.concatenate(outputs) if outputs else np.empty(0)


class LinkTaskTrainer:
    """Trains a :class:`~repro.gnn.models.TwoTowerModel` with BPR loss.

    Training examples are (query entity, seed time, positive item)
    triples; each step samples ``num_negatives`` uniform negative items
    per positive and minimizes the Bayesian-personalized-ranking loss
    between the positive score and each negative score.
    """

    def __init__(
        self,
        model: TwoTowerModel,
        graph: HeteroGraph,
        sampler: NeighborSampler,
        config: Optional[TrainConfig] = None,
        num_negatives: int = 4,
        loader: Optional["ParallelSampleLoader"] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.sampler = sampler
        self.config = config or TrainConfig()
        self.num_negatives = num_negatives
        #: Optional parallel/prefetching batch source (see NodeTaskTrainer).
        self.loader = loader
        self.history = _History()
        self._rng = np.random.default_rng(self.config.seed)
        self._num_items = graph.num_nodes(model.item_type)
        #: (item_ids bytes, embeddings) memo for inference; see
        #: :meth:`_cached_item_embeddings`.
        self._item_embed_cache: Optional[Tuple[bytes, Tensor]] = None

    def fit(
        self,
        seed_type: str,
        query_ids: np.ndarray,
        query_times: np.ndarray,
        pos_item_ids: np.ndarray,
        val_query_ids: Optional[np.ndarray] = None,
        val_query_times: Optional[np.ndarray] = None,
        val_pos_item_ids: Optional[np.ndarray] = None,
        deadline: Optional[Deadline] = None,
    ) -> _History:
        """Train on positive (query, item) pairs with sampled negatives."""
        self._item_embed_cache = None  # parameters are about to change
        optimizer = Adam(
            self.model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        loop = _ResilientLoop(self, optimizer, num_examples=len(query_ids), deadline=deadline)

        def run_epoch(epoch: int) -> Tuple[float, int]:
            self.model.train()
            clip_events = 0
            order = self._rng.permutation(len(query_ids))
            losses = []
            for batch, subgraph in _epoch_batches(self, seed_type, query_ids, query_times, order):
                if deadline is not None:
                    deadline.check("trainer.step")
                fault_point("trainer.step")
                loss = self._batch_loss(
                    seed_type, query_ids[batch], query_times[batch], pos_item_ids[batch],
                    subgraph=subgraph,
                )
                loss_value = corrupt_value("trainer.loss", float(loss.item()))
                reason = loop.guard.check_loss(loss_value)
                if reason is not None:
                    raise _Diverged(reason, loss_value)
                optimizer.zero_grad()
                loss.backward()
                norm = optimizer.gather_and_clip(self.config.clip_norm)
                reason = loop.guard.check_grad_norm(norm)
                if reason is not None:
                    raise _Diverged(reason, norm)
                clip_events += norm > self.config.clip_norm
                optimizer.step()
                losses.append(loss_value)
            return float(np.mean(losses)), clip_events

        run_val = None
        if val_query_ids is not None:
            run_val = lambda: self._evaluate_loss(
                seed_type, val_query_ids, val_query_times, val_pos_item_ids
            )
        loop.run(run_epoch, run_val)
        self._item_embed_cache = None  # drop anything cached mid-fit
        return self.history

    def _batch_loss(self, seed_type, query_ids, query_times, pos_items, subgraph=None):
        if subgraph is None:
            subgraph = self.sampler.sample(seed_type, query_ids, query_times)
        queries = self.model.query_embeddings(subgraph, self.graph)
        pos_embed = self.model.item_embeddings(pos_items, self.graph)
        pos_scores = self.model.score_pairs(queries, pos_embed)
        total = None
        for _ in range(self.num_negatives):
            negatives = self._rng.integers(0, self._num_items, size=len(query_ids))
            neg_embed = self.model.item_embeddings(negatives, self.graph)
            neg_scores = self.model.score_pairs(queries, neg_embed)
            term = bpr_loss(pos_scores, neg_scores)
            total = term if total is None else total + term
        return total * (1.0 / self.num_negatives)

    def _evaluate_loss(self, seed_type, query_ids, query_times, pos_items) -> float:
        self.model.eval()
        losses, weights = [], []
        batch_size = self.config.effective_infer_batch_size
        with no_grad():
            for start in range(0, len(query_ids), batch_size):
                stop = start + batch_size
                loss = self._batch_loss(
                    seed_type,
                    query_ids[start:stop],
                    query_times[start:stop],
                    pos_items[start:stop],
                )
                losses.append(loss.item())
                weights.append(min(stop, len(query_ids)) - start)
        return float(np.average(losses, weights=weights))

    def score_against_items(
        self,
        seed_type: str,
        query_ids: np.ndarray,
        query_times: np.ndarray,
        item_ids: np.ndarray,
    ) -> np.ndarray:
        """Score every query against every item: (num_queries, num_items)."""
        self.model.eval()
        # Deterministic inference (see NodeTaskTrainer.predict).
        self.sampler.rng = np.random.default_rng(self.config.seed + 9999)
        blocks: List[np.ndarray] = []
        batch_size = self.config.effective_infer_batch_size
        with no_grad():
            items = self._cached_item_embeddings(item_ids)
            for start in range(0, len(query_ids), batch_size):
                stop = start + batch_size
                subgraph = self.sampler.sample(
                    seed_type, query_ids[start:stop], query_times[start:stop]
                )
                queries = self.model.query_embeddings(subgraph, self.graph)
                blocks.append(self.model.score(queries, items).data)
        if not blocks:
            return np.zeros((0, len(item_ids)))
        return np.vstack(blocks)

    def _cached_item_embeddings(self, item_ids: np.ndarray) -> Tensor:
        """Item-tower embeddings, memoized across inference calls.

        The item tower sees the same ids on every ``rank_items`` /
        ``score_against_items`` call, so its forward pass is pure
        repeated work once the model is frozen.  ``fit`` invalidates
        the cache (parameters change every step).
        """
        key = np.asarray(item_ids, dtype=np.int64).tobytes()
        cached = self._item_embed_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        items = self.model.item_embeddings(item_ids, self.graph)
        self._item_embed_cache = (key, items)
        return items
