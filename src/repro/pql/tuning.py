"""Grid search over planner configurations.

Declarative ML still has hyperparameters; this module keeps their
selection inside the temporal protocol: every candidate trains on the
training cutoffs and is scored on the *validation* cutoff — the test
cutoff is never touched until the final model is chosen.

Example::

    from repro.pql.tuning import tune

    result = tune(
        db, query, split,
        grid={"hidden_dim": [16, 32], "num_layers": [1, 2]},
    )
    result.best_model.evaluate(split.test_cutoff)
    for entry in result.leaderboard:
        print(entry.params, entry.score)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.eval.splits import TemporalSplit
from repro.pql.ast import PredictiveQuery, TaskType
from repro.pql.planner import PlannerConfig, PredictiveQueryPlanner, TrainedPredictiveModel
from repro.relational.database import Database

__all__ = ["TuneEntry", "TuneResult", "tune"]

#: Validation metric per task type, and whether higher is better.
_DEFAULT_METRICS = {
    TaskType.BINARY: ("auroc", True),
    TaskType.REGRESSION: ("mae", False),
    TaskType.LINK: ("mrr", True),
}


@dataclass
class TuneEntry:
    """One evaluated configuration."""

    params: Dict[str, object]
    score: float
    metric: str


@dataclass
class TuneResult:
    """Outcome of a grid search, ranked best-first."""

    best_model: TrainedPredictiveModel
    best_params: Dict[str, object]
    metric: str
    higher_is_better: bool
    leaderboard: List[TuneEntry] = field(default_factory=list)


def tune(
    db: Database,
    query: Union[str, PredictiveQuery],
    split: TemporalSplit,
    grid: Mapping[str, Sequence[object]],
    base_config: Optional[PlannerConfig] = None,
    metric: Optional[str] = None,
) -> TuneResult:
    """Exhaustive grid search; selects on the validation cutoff.

    Parameters
    ----------
    db, query, split:
        As for :meth:`PredictiveQueryPlanner.fit`.
    grid:
        Mapping from :class:`PlannerConfig` field name to candidate
        values; the cartesian product is evaluated.
    base_config:
        Config providing all non-swept fields (defaults otherwise).
    metric:
        Validation metric to select on; defaults per task type (AUROC,
        MAE, MRR).  Direction is inferred (error metrics minimize).

    Notes
    -----
    The best configuration's *already trained* model is returned — no
    retraining on train+val, keeping the protocol simple and honest.
    """
    if not grid:
        raise ValueError("grid must name at least one hyperparameter")
    base = base_config or PlannerConfig()
    for name in grid:
        if not hasattr(base, name):
            raise KeyError(f"PlannerConfig has no field {name!r}")

    binding = PredictiveQueryPlanner(db, base).plan(query)
    default_metric, default_higher = _DEFAULT_METRICS[binding.task_type]
    chosen_metric = metric or default_metric
    higher_is_better = (
        default_higher if metric is None else metric not in ("mae", "rmse", "brier", "ece")
    )

    names = list(grid)
    leaderboard: List[TuneEntry] = []
    best_model: Optional[TrainedPredictiveModel] = None
    best_score = None
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        config = replace(base, **params)
        model = PredictiveQueryPlanner(db, config).fit(query, split)
        score = float(model.evaluate(split.val_cutoff)[chosen_metric])
        leaderboard.append(TuneEntry(params=params, score=score, metric=chosen_metric))
        better = (
            best_score is None
            or (higher_is_better and score > best_score)
            or (not higher_is_better and score < best_score)
        )
        if better:
            best_score = score
            best_model = model
            best_params = params

    leaderboard.sort(key=lambda entry: entry.score, reverse=higher_is_better)
    return TuneResult(
        best_model=best_model,
        best_params=best_params,
        metric=chosen_metric,
        higher_is_better=higher_is_better,
        leaderboard=leaderboard,
    )
