"""The query → trained-model compiler.

:class:`PredictiveQueryPlanner` is the paper's headline API: hand it a
database and a PQL string, and it produces a trained model —

1. **parse + validate** the query against the schema;
2. **label** every (entity, cutoff) pair by executing the window
   aggregate over the database;
3. **compile the graph**: rows → nodes, foreign keys → edges, feature
   statistics fitted strictly before the first label window;
4. **train** a heterogeneous GNN with time-respecting neighbor
   sampling (a two-tower retrieval model for LIST queries);
5. return a :class:`TrainedPredictiveModel` that predicts for any
   entity at any cutoff and evaluates itself on future cutoffs.

No per-task feature engineering appears anywhere in this path — that
is the point.

Production hardening is opt-in via a
:class:`~repro.resilience.ResilienceConfig`: per-stage deadline
budgets and seeded retries, epoch checkpointing with ``--resume``,
divergence guards inside the trainers, and a graceful-degradation
ladder (GNN → GBDT → heuristic) whose provenance is recorded in the
saved manifest as ``degraded_from``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.obs import get_logger, get_registry
from repro.obs import trace as obs_trace
from repro.eval.metrics import (
    accuracy,
    auroc,
    average_precision,
    brier_score,
    expected_calibration_error,
    f1_score,
    hit_rate_at_k,
    mae,
    mrr,
    ndcg_at_k,
    r2_score,
    rmse,
)
from repro.eval.splits import TemporalSplit
from repro.gnn.models import GraphMetadata, HeteroGNN, TwoTowerModel
from repro.gnn.trainer import LinkTaskTrainer, NodeTaskTrainer, TrainConfig
from repro.graph.builder import build_graph, node_index_for_keys
from repro.graph.cache import CachedSampler, LRUSubgraphCache
from repro.graph.hetero import HeteroGraph
from repro.graph.fast_sampler import VectorizedNeighborSampler
from repro.graph.parallel import ParallelSampleLoader
from repro.graph.sampler import NeighborSampler
from repro.pql.ast import PredictiveQuery, TaskType
from repro.pql.labeler import LabelTable, build_label_table
from repro.pql.parser import parse
from repro.pql.validate import QueryBinding, validate
from repro.relational.database import Database
# Leaf-module imports only: repro.resilience.fallback (and therefore the
# package __init__) imports back into repro.pql, so the planner must not
# trigger it at import time.  fit_fallback is imported lazily in _degrade.
from repro.resilience.checkpoint import (
    CorruptModelError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    sha256_file,
)
from repro.resilience.config import ResilienceConfig
from repro.resilience.faults import fault_point
from repro.resilience.guards import DivergenceError
from repro.resilience.retry import (
    Deadline,
    StageFailedError,
    StageTimeoutError,
    run_stage,
)

__all__ = [
    "PlannerConfig",
    "PredictiveQueryPlanner",
    "TrainedPredictiveModel",
    "CorruptModelError",
]

_log = get_logger("pql.planner")


@dataclass
class PlannerConfig:
    """Hyperparameters of the compiled pipeline.

    The defaults are deliberately task-agnostic: the declarative claim
    is that one configuration serves every query.
    """

    hidden_dim: int = 32
    num_layers: int = 2
    fanouts: Optional[List[int]] = None  # default: [8] * num_layers
    dropout: float = 0.0
    aggregation: str = "mean"
    shared_weights: bool = False
    #: Message-passing layer family: "sage" (default) or "gat".
    conv_type: str = "sage"
    #: Seed-relative time encoding: "log" (default) or "fourier"
    #: (adds sin/cos channels at daily/weekly/monthly/yearly periods).
    time_encoding: str = "log"
    epochs: int = 30
    batch_size: int = 256
    lr: float = 5e-3
    weight_decay: float = 1e-5
    patience: int = 5
    clip_norm: float = 5.0
    seed: int = 0
    #: The leaky ablation switch (Figure 3); keep True everywhere else.
    time_respecting: bool = True
    #: Encode each node's time-valid in-degree per relation (strong
    #: recency/frequency signal even at depth 0); off for the pure
    #: message-passing-depth ablation (Figure 1).
    degree_features: bool = True
    #: Cap on training rows (subsampled reproducibly); None = no cap.
    max_train_rows: Optional[int] = None
    #: Negatives per positive for LIST queries.
    num_negatives: int = 4
    #: Weight positive BCE terms by the inverse class ratio (binary
    #: tasks with skewed labels); improves recall at some AUROC cost.
    auto_pos_weight: bool = False
    #: Neighbor-sampler implementation: "reference" (exact
    #: without-replacement semantics), "vectorized" (~5x faster,
    #: with-replacement draws on high-degree nodes), or
    #: "vectorized-unique" (vectorized kernels, exact without-
    #: replacement fanouts; costs scale with node degree).
    sampler_impl: str = "reference"
    #: Subgraph LRU capacity in batches; 0 disables memoization.
    #: Sampling is deterministic per batch either way (see
    #: :mod:`repro.graph.cache`), so the cache never changes results —
    #: only how often identical batches are re-sampled.
    cache_size: int = 0
    #: Sampling worker processes for training epochs (0 = in-process).
    num_workers: int = 0
    #: Batches kept in flight beyond one per worker.
    prefetch_batches: int = 2
    #: Serve sampler workers from a shared-memory CSR graph store
    #: (zero-copy; the default).  ``False`` falls back to plain fork
    #: inheritance of the graph — results are bit-identical either
    #: way; see :mod:`repro.graph.shared`.
    shared_graph: bool = True
    #: Compute dtype for model parameters and activations: "float64"
    #: (default, the reference numerics) or "float32" (the fast
    #: training path; gradcheck always runs in float64).
    compute_dtype: str = "float64"
    #: Batch size for no-grad inference (evaluation, predict,
    #: rank_items); None falls back to ``batch_size``.  Inference holds
    #: no backward graph, so this can usually be several times larger.
    infer_batch_size: Optional[int] = None

    def make_sampler(self, graph, rng) -> "CachedSampler":
        """Instantiate the configured sampler implementation.

        The base sampler is wrapped in a
        :class:`~repro.graph.cache.CachedSampler`, which re-seeds it
        per batch from the batch content (making every draw a pure
        function of the batch) and, with ``cache_size > 0``, memoizes
        subgraphs across epochs and inference calls.
        """
        if self.sampler_impl in ("vectorized", "vectorized-unique"):
            base = VectorizedNeighborSampler(
                graph, fanouts=self.resolved_fanouts(), rng=rng,
                time_respecting=self.time_respecting,
                unique=self.sampler_impl == "vectorized-unique",
            )
        elif self.sampler_impl == "reference":
            base = NeighborSampler(
                graph, fanouts=self.resolved_fanouts(), rng=rng,
                time_respecting=self.time_respecting,
            )
        else:
            raise ValueError(
                "sampler_impl must be 'reference', 'vectorized', or "
                f"'vectorized-unique', got {self.sampler_impl!r}"
            )
        cache = LRUSubgraphCache(self.cache_size) if self.cache_size > 0 else None
        return CachedSampler(base, base_seed=self.seed, cache=cache)

    def resolved_fanouts(self) -> List[int]:
        """Fanouts, defaulting to 8 per message-passing hop."""
        if self.fanouts is not None:
            return list(self.fanouts)
        return [8] * max(self.num_layers, 1)

    def train_config(self) -> TrainConfig:
        """The inner loop's hyperparameters."""
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            weight_decay=self.weight_decay,
            patience=self.patience,
            clip_norm=self.clip_norm,
            seed=self.seed,
            num_workers=self.num_workers,
            prefetch_batches=self.prefetch_batches,
            shared_graph=self.shared_graph,
            infer_batch_size=self.infer_batch_size,
        )


class PredictiveQueryPlanner:
    """Compiles PQL queries over one database into trained models."""

    def __init__(
        self,
        db: Database,
        config: Optional[PlannerConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        self.db = db
        self.config = config or PlannerConfig()
        #: Fault-tolerance policy; None = no retries/budgets/fallback.
        self.resilience = resilience
        #: Memoized parse+validate results keyed by query text.  Safe
        #: because bindings depend only on the schema, which a planner
        #: holds fixed; serving repeated queries (the production use)
        #: skips re-parsing entirely.
        self._plan_cache: Dict[str, QueryBinding] = {}

    def plan(self, query: Union[str, PredictiveQuery]) -> QueryBinding:
        """Parse (if needed) and validate a query against the schema.

        Results are cached per query text; hit/miss counts are
        exported as ``planner.plan_cache.{hits,misses}``.
        """
        text = query if isinstance(query, str) else str(query)
        cached = self._plan_cache.get(text)
        if cached is not None:
            get_registry().counter("planner.plan_cache.hits").inc()
            if obs_trace.enabled():
                obs_trace.add_counter("planner.plan_cache.hits")
            return cached
        get_registry().counter("planner.plan_cache.misses").inc()
        if obs_trace.enabled():
            obs_trace.add_counter("planner.plan_cache.misses")
        parsed = parse(query) if isinstance(query, str) else query
        binding = validate(parsed, self.db)
        self._plan_cache[text] = binding
        return binding

    def notify_delta(self, report) -> int:
        """Ingest-refresh hook: revalidate the plan cache after a delta.

        Bindings depend only on the schema, and append-only ingest
        never changes it, so every cached plan survives — the point of
        this hook is to make that decision *observable* (the
        ``planner.plan_cache.retained_after_delta`` counter feeds the
        selective-invalidation evidence in ``BENCH_ingest.json``)
        rather than conservatively flushing.  Returns the retained
        count.
        """
        retained = len(self._plan_cache)
        get_registry().counter("planner.plan_cache.retained_after_delta").inc(retained)
        return retained

    def _run_stage(self, name: str, fn):
        """Run one compile stage under the configured retry/budget policy."""
        if self.resilience is None:
            return fn(deadline=Deadline(None, stage=name), attempt=0)
        return run_stage(
            name,
            fn,
            policy=self.resilience.retry_policy(),
            budget_seconds=self.resilience.timeout_for(name),
        )

    def fit(
        self,
        query: Union[str, PredictiveQuery],
        split: TemporalSplit,
    ) -> "TrainedPredictiveModel":
        """Compile and train; returns the deployable model."""
        with obs_trace.span("planner.fit"):
            with obs_trace.span("planner.parse"):
                binding = self.plan(query)
            _log.info(
                "query compiled", extra={"task_type": binding.task_type.value,
                                         "entity": binding.query.entity_table},
            )

            def label_stage(deadline: Deadline, attempt: int):
                with obs_trace.span("planner.label") as label_span:
                    train = build_label_table(self.db, binding, split.train_cutoffs)
                    val = build_label_table(self.db, binding, [split.val_cutoff])
                    label_span.add_counter("label.train_rows", len(train))
                    label_span.add_counter("label.val_rows", len(val))
                    label_span.add_counter("label.train_cutoffs", len(split.train_cutoffs))
                deadline.check("planner.label")
                return train, val

            train_labels, val_labels = self._run_stage("label", label_stage)
            if len(train_labels) == 0:
                raise ValueError("no training rows: check cutoffs against the data's time span")
            _log.info(
                "labels built", extra={"train_rows": len(train_labels), "val_rows": len(val_labels)},
            )

            train_labels = self._maybe_subsample(train_labels)
            stats_cutoff = min(split.train_cutoffs)

            def graph_stage(deadline: Deadline, attempt: int):
                with obs_trace.span("planner.graph_build") as build_span:
                    built = build_graph(self.db, stats_cutoff=stats_cutoff)
                    build_span.add_counter("graph.nodes", built.total_nodes())
                    build_span.add_counter("graph.edges", built.total_edges())
                    build_span.add_counter("graph.node_types", len(built.node_types))
                    build_span.add_counter("graph.edge_types", len(built.edge_types))
                deadline.check("planner.graph_build")
                return built

            graph = self._run_stage("graph_build", graph_stage)
            _log.info(
                "graph compiled",
                extra={"nodes": graph.total_nodes(), "edges": graph.total_edges()},
            )
            metadata = GraphMetadata.from_graph(graph)

            def train_stage(deadline: Deadline, attempt: int):
                # Each attempt rebuilds model + sampler from the seed so a
                # retry starts clean; after a mid-run failure with
                # checkpointing enabled, the retry resumes from the last
                # committed epoch instead of epoch 0.
                rng = np.random.default_rng(self.config.seed)
                sampler = self.config.make_sampler(
                    graph, np.random.default_rng(self.config.seed + 1)
                )
                loader = None
                if self.config.num_workers > 0:
                    loader = ParallelSampleLoader(
                        sampler,
                        num_workers=self.config.num_workers,
                        prefetch_batches=self.config.prefetch_batches,
                        shared_graph=self.config.shared_graph,
                    )
                resume = bool(
                    self.resilience
                    and (self.resilience.resume
                         or (attempt > 0 and self.resilience.checkpoint_dir))
                )
                try:
                    if binding.task_type == TaskType.LINK:
                        return self._fit_link(
                            binding, split, graph, metadata, sampler, rng,
                            train_labels, val_labels, deadline=deadline, resume=resume,
                            loader=loader,
                        )
                    return self._fit_node(
                        binding, split, graph, metadata, sampler, rng,
                        train_labels, val_labels, deadline=deadline, resume=resume,
                        loader=loader,
                    )
                finally:
                    if loader is not None:
                        loader.close()

            with obs_trace.span("planner.train"):
                try:
                    model = self._run_stage("train", train_stage)
                except (StageFailedError, StageTimeoutError, DivergenceError) as err:
                    if self.resilience is None or not self.resilience.fallback:
                        raise
                    model = self._degrade(binding, graph, train_labels, val_labels, err)
            if model.degraded_from is None:
                trainer = model.node_trainer or model.link_trainer
                _log.info(
                    "training finished",
                    extra={"epochs": len(trainer.history.train_loss),
                           "best_epoch": trainer.history.best_epoch},
                )
            model.stats_cutoff = stats_cutoff
            model.resilience = self.resilience
        return model

    def fit_routed(
        self,
        query: Union[str, PredictiveQuery],
        split: TemporalSplit,
        router=None,
    ):
        """Compile, train, and wrap in the cost-based tier router.

        Returns a :class:`~repro.pql.router.RoutedPredictiveModel`:
        the full GNN (red) from :meth:`fit` plus the calibrated
        green/yellow tiers and the cost model that routes between
        them.  ``router`` is a :class:`~repro.pql.router.RouterConfig`
        (default policy when omitted).
        """
        from repro.pql.router import fit_routed  # lazy: router imports this module

        return fit_routed(self, query, split, router)

    def _degrade(self, binding, graph, train_labels, val_labels, err) -> "TrainedPredictiveModel":
        """Descend the fallback ladder after a failed GNN train stage."""
        from repro.resilience.fallback import fit_fallback

        reason = f"{type(err).__name__}: {err}"
        get_registry().counter("resilience.degraded").inc()
        obs_trace.add_counter("resilience.degraded")
        _log.warning(
            "GNN stage failed; descending the degradation ladder",
            extra={"error": reason},
        )
        with obs_trace.span("planner.fallback"):
            baseline = fit_fallback(
                self.db, binding, graph, train_labels, val_labels,
                include_two_hop=self.resilience.fallback_two_hop,
            )
        return TrainedPredictiveModel(
            db=self.db,
            binding=binding,
            graph=graph,
            config=self.config,
            baseline=baseline,
            degraded_from="gnn",
            degraded_reason=reason,
        )

    def _train_config(self, resume: bool) -> TrainConfig:
        """The inner-loop config with resilience policy threaded in."""
        tc = self.config.train_config()
        resil = self.resilience
        if resil is not None:
            tc.checkpoint_dir = resil.checkpoint_dir
            tc.checkpoint_every = resil.checkpoint_every
            tc.resume = resume
            tc.divergence_recoveries = resil.divergence_recoveries
            tc.lr_backoff = resil.lr_backoff
            tc.grad_norm_limit = resil.grad_norm_limit
        return tc

    # ------------------------------------------------------------------
    # Node tasks (binary / regression)
    # ------------------------------------------------------------------
    def _fit_node(self, binding, split, graph, metadata, sampler, rng, train_labels, val_labels,
                  deadline=None, resume=False, loader=None):
        entity_type = binding.query.entity_table
        model = HeteroGNN(
            metadata,
            hidden_dim=self.config.hidden_dim,
            out_dim=1,
            num_layers=self.config.num_layers,
            rng=rng,
            aggregation=self.config.aggregation,
            shared_weights=self.config.shared_weights,
            dropout=self.config.dropout,
            degree_features=self.config.degree_features,
            conv_type=self.config.conv_type,
            time_encoding=self.config.time_encoding,
            dtype=self.config.compute_dtype,
        )
        task = "binary" if binding.task_type == TaskType.BINARY else "regression"
        pos_weight = None
        if task == "binary" and self.config.auto_pos_weight:
            rate = float(np.clip(train_labels.positive_rate, 1e-3, 1 - 1e-3))
            pos_weight = (1.0 - rate) / rate
        trainer = NodeTaskTrainer(
            model, graph, sampler, task,
            config=self._train_config(resume),
            pos_weight=pos_weight,
            loader=loader,
        )
        train_ids = node_index_for_keys(graph, entity_type, train_labels.entity_keys)
        kwargs = {}
        if len(val_labels):
            kwargs = dict(
                val_ids=node_index_for_keys(graph, entity_type, val_labels.entity_keys),
                val_times=val_labels.cutoffs,
                val_labels=val_labels.labels,
            )
        trainer.fit(entity_type, train_ids, train_labels.cutoffs, train_labels.labels,
                    deadline=deadline, **kwargs)
        return TrainedPredictiveModel(
            db=self.db,
            binding=binding,
            graph=graph,
            config=self.config,
            node_trainer=trainer,
        )

    # ------------------------------------------------------------------
    # Link tasks
    # ------------------------------------------------------------------
    def _fit_link(self, binding, split, graph, metadata, sampler, rng, train_labels, val_labels,
                  deadline=None, resume=False, loader=None):
        entity_type = binding.query.entity_table
        item_type = binding.item_table
        model = TwoTowerModel(
            metadata,
            item_type=item_type,
            num_items=graph.num_nodes(item_type),
            embed_dim=self.config.hidden_dim,
            num_layers=self.config.num_layers,
            rng=rng,
            dropout=self.config.dropout,
            dtype=self.config.compute_dtype,
        )
        trainer = LinkTaskTrainer(
            model,
            graph,
            sampler,
            config=self._train_config(resume),
            num_negatives=self.config.num_negatives,
            loader=loader,
        )
        q_ids, q_times, pos_items = self._explode_pairs(graph, entity_type, item_type, train_labels)
        if len(q_ids) == 0:
            raise ValueError("no positive (entity, item) pairs in the training windows")
        kwargs = {}
        vq, vt, vi = self._explode_pairs(graph, entity_type, item_type, val_labels)
        if len(vq):
            kwargs = dict(val_query_ids=vq, val_query_times=vt, val_pos_item_ids=vi)
        trainer.fit(entity_type, q_ids, q_times, pos_items, deadline=deadline, **kwargs)
        return TrainedPredictiveModel(
            db=self.db,
            binding=binding,
            graph=graph,
            config=self.config,
            link_trainer=trainer,
        )

    def _explode_pairs(self, graph, entity_type, item_type, labels: LabelTable):
        """Flatten a LIST label table into (query, time, item) triples."""
        queries, times, items = [], [], []
        for key, cutoff, item_keys in zip(
            labels.entity_keys.tolist(), labels.cutoffs.tolist(), labels.item_keys or []
        ):
            for item_key in np.asarray(item_keys).tolist():
                queries.append(key)
                times.append(cutoff)
                items.append(item_key)
        if not queries:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        q_ids = node_index_for_keys(graph, entity_type, np.asarray(queries))
        item_ids = node_index_for_keys(graph, item_type, np.asarray(items))
        return q_ids, np.asarray(times, dtype=np.int64), item_ids

    def _maybe_subsample(self, labels: LabelTable) -> LabelTable:
        cap = self.config.max_train_rows
        if cap is None or len(labels) <= cap:
            return labels
        rng = np.random.default_rng(self.config.seed + 7)
        picks = rng.choice(len(labels), size=cap, replace=False)
        return labels.subset(np.sort(picks))


class TrainedPredictiveModel:
    """A fitted predictive query, ready to predict and self-evaluate.

    Usually backed by a trained GNN; after graceful degradation it is
    backed by a fallback baseline instead, with ``degraded_from``
    recording what failed and ``baseline.kind`` recording the rung.
    """

    def __init__(
        self,
        db: Database,
        binding: QueryBinding,
        graph: HeteroGraph,
        config: PlannerConfig,
        node_trainer: Optional[NodeTaskTrainer] = None,
        link_trainer: Optional[LinkTaskTrainer] = None,
        baseline=None,
        degraded_from: Optional[str] = None,
        degraded_reason: Optional[str] = None,
    ) -> None:
        self.db = db
        self.binding = binding
        self.graph = graph
        self.config = config
        self.node_trainer = node_trainer
        self.link_trainer = link_trainer
        #: Fallback predictor when the GNN stage degraded (see
        #: :mod:`repro.resilience.fallback`).
        self.baseline = baseline
        #: What the fallback replaced (``"gnn"``), or None.
        self.degraded_from = degraded_from
        #: Human-readable cause of the degradation.
        self.degraded_reason = degraded_reason
        #: Feature-statistics cutoff used at fit time (set by the planner;
        #: persisted so a reloaded model rebuilds the identical graph).
        self.stats_cutoff: Optional[int] = None
        #: The planner's resilience policy (not persisted).
        self.resilience: Optional[ResilienceConfig] = None

    @property
    def task_type(self) -> TaskType:
        """The compiled task type."""
        return self.binding.task_type

    def sampler_cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss/eviction stats of the subgraph cache, or None.

        None when the model is degraded (no sampler) or the planner
        was configured with ``cache_size=0``.
        """
        trainer = self.node_trainer or self.link_trainer
        if trainer is None:
            return None
        cache = getattr(trainer.sampler, "cache", None)
        return cache.stats() if cache is not None else None

    def sampler_cache_snapshot(self) -> Optional[Dict[str, int]]:
        """Monotonic lifetime cache counters, or None.

        Unlike :meth:`sampler_cache_stats` (whose window an owner may
        rebase via ``reset_stats``), this is safe for concurrent
        readers: the query router polls it to estimate subgraph-cache
        hit likelihood without disturbing anyone's reporting window.
        """
        trainer = self.node_trainer or self.link_trainer
        if trainer is None:
            return None
        cache = getattr(trainer.sampler, "cache", None)
        return cache.snapshot() if cache is not None else None

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_cutoffs(cutoff, count: int) -> np.ndarray:
        """Broadcast a scalar cutoff (or pass through a vector) to ``count``."""
        cutoffs = np.asarray(cutoff, dtype=np.int64)
        if cutoffs.ndim == 0:
            return np.full(count, int(cutoffs), dtype=np.int64)
        if cutoffs.shape != (count,):
            raise ValueError(
                f"cutoff must be a scalar or have shape ({count},), got {cutoffs.shape}"
            )
        return cutoffs

    def predict(self, entity_keys: np.ndarray, cutoff) -> np.ndarray:
        """Predictions for given entities as of ``cutoff``.

        ``cutoff`` may be one timestamp for the whole batch or an
        array with one prediction time per entity — one call then
        serves mixed-horizon requests, batched through the sampler
        (and its subgraph cache, when the planner configured one).

        Binary → P(positive); regression → value on the label scale.
        For link tasks use :meth:`rank_items`.
        """
        if self.task_type == TaskType.LINK:
            raise RuntimeError("predict() is for node tasks; use rank_items() for LIST queries")
        entity_keys = np.asarray(entity_keys)
        cutoffs = self._resolve_cutoffs(cutoff, len(entity_keys))
        if self.node_trainer is None:
            if self.baseline is None:
                raise RuntimeError("model has neither a trained GNN nor a fallback baseline")
            return self.baseline.predict(self.db, entity_keys, cutoffs)
        entity_type = self.binding.query.entity_table
        ids = node_index_for_keys(self.graph, entity_type, entity_keys)
        return self.node_trainer.predict(entity_type, ids, cutoffs)

    def _item_scorer(self):
        scorer = self.link_trainer or self.baseline
        if scorer is None:
            raise RuntimeError("model has neither a trained ranker nor a fallback baseline")
        return scorer

    def rank_items(self, entity_keys: np.ndarray, cutoff, k: int = 10):
        """Top-``k`` item keys and scores per entity (link tasks only).

        ``cutoff`` may be a scalar or a per-entity array, as in
        :meth:`predict`.
        """
        if self.task_type != TaskType.LINK:
            raise RuntimeError("rank_items() is only available for LIST queries")
        entity_type = self.binding.query.entity_table
        item_type = self.binding.item_table
        q_ids = node_index_for_keys(self.graph, entity_type, np.asarray(entity_keys))
        times = self._resolve_cutoffs(cutoff, len(q_ids))
        item_ids = np.arange(self.graph.num_nodes(item_type))
        scores = self._item_scorer().score_against_items(entity_type, q_ids, times, item_ids)
        item_keys = self.graph.node_keys[item_type]
        # One vectorized sort across all rows; ``stable`` keeps the same
        # deterministic tie order as sorting each row separately.
        top = np.argsort(-scores, axis=1, kind="stable")[:, :k]
        rows = np.arange(scores.shape[0])[:, None]
        top_scores = scores[rows, top]
        return [(item_keys[top[i]], top_scores[i]) for i in range(scores.shape[0])]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, cutoff: int, k: int = 10) -> Dict[str, float]:
        """Metrics against ground-truth labels computed at ``cutoff``."""
        resil = self.resilience

        def evaluate_stage(deadline: Deadline, attempt: int) -> Dict[str, float]:
            with obs_trace.span("planner.evaluate") as eval_span:
                labels = build_label_table(self.db, self.binding, [int(cutoff)])
                eval_span.add_counter("eval.rows", len(labels))
                if self.task_type == TaskType.LINK:
                    result = self._evaluate_link(labels, k)
                else:
                    result = self._evaluate_node(labels, cutoff)
            deadline.check("planner.evaluate")
            return result

        if resil is None:
            return evaluate_stage(Deadline(None, stage="evaluate"), 0)
        return run_stage(
            "evaluate",
            evaluate_stage,
            policy=resil.retry_policy(),
            budget_seconds=resil.timeout_for("evaluate"),
        )

    def _evaluate_node(self, labels: LabelTable, cutoff: int) -> Dict[str, float]:
        predictions = self.predict(labels.entity_keys, int(cutoff))
        if self.task_type == TaskType.BINARY:
            return {
                "auroc": auroc(labels.labels, predictions),
                "average_precision": average_precision(labels.labels, predictions),
                "accuracy": accuracy(labels.labels, (predictions > 0.5).astype(float)),
                "f1": f1_score(labels.labels, (predictions > 0.5).astype(float)),
                "brier": brier_score(labels.labels, predictions),
                "ece": expected_calibration_error(labels.labels, predictions),
                "num_examples": float(len(labels)),
                "positive_rate": labels.positive_rate,
            }
        return {
            "mae": mae(labels.labels, predictions),
            "rmse": rmse(labels.labels, predictions),
            "r2": r2_score(labels.labels, predictions),
            "num_examples": float(len(labels)),
        }

    def _evaluate_link(self, labels: LabelTable, k: int) -> Dict[str, float]:
        entity_type = self.binding.query.entity_table
        item_type = self.binding.item_table
        # Standard retrieval protocol: evaluate entities with >= 1 positive.
        keep = [i for i, items in enumerate(labels.item_keys or []) if len(items) > 0]
        if not keep:
            return {"mrr": float("nan"), f"hit_rate@{k}": float("nan"), f"ndcg@{k}": float("nan"), "num_queries": 0.0}
        subset = labels.subset(np.asarray(keep))
        q_ids = node_index_for_keys(self.graph, entity_type, subset.entity_keys)
        item_ids = np.arange(self.graph.num_nodes(item_type))
        scores = self._item_scorer().score_against_items(
            entity_type, q_ids, subset.cutoffs, item_ids
        )
        item_key_to_node = {key: i for i, key in enumerate(self.graph.node_keys[item_type].tolist())}
        relevance = []
        for item_keys in subset.item_keys:
            mask = np.zeros(len(item_ids), dtype=bool)
            for key in np.asarray(item_keys).tolist():
                node = item_key_to_node.get(key)
                if node is not None:
                    mask[node] = True
            relevance.append(mask)
        score_lists = [scores[i] for i in range(len(scores))]
        return {
            "mrr": mrr(score_lists, relevance),
            f"hit_rate@{k}": hit_rate_at_k(score_lists, relevance, k),
            f"ndcg@{k}": ndcg_at_k(score_lists, relevance, k),
            "num_queries": float(len(score_lists)),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    WEIGHTS_FILE = "weights.npz"
    FALLBACK_FILE = "fallback.pkl"
    MANIFEST_FILE = "manifest.json"

    def save(self, directory: str) -> None:
        """Persist the trained model to ``directory`` atomically.

        Layout: ``manifest.json`` (query text, planner config, task
        metadata, SHA-256 checksums, degradation provenance) plus
        ``weights.npz`` (GNN parameters by dotted name) or
        ``fallback.pkl`` (a degraded model's baseline).  Everything is
        staged into a sibling temp directory and renamed into place, so
        a crash mid-save never corrupts a previously saved model.  The
        database itself is *not* saved — reload against the same (or a
        schema-compatible, refreshed) database.
        """
        trainer = self.node_trainer or self.link_trainer
        manifest = {
            "query": str(self.binding.query),
            "config": dataclasses.asdict(self.config),
            "task_type": self.task_type.value,
            "stats_cutoff": self.stats_cutoff,
        }
        if self.node_trainer is not None:
            manifest["target_mean"] = self.node_trainer._target_mean
            manifest["target_std"] = self.node_trainer._target_std
        if self.degraded_from is not None:
            manifest["degraded_from"] = self.degraded_from
            manifest["degraded_reason"] = self.degraded_reason

        staging = directory.rstrip(os.sep) + ".tmp"
        if os.path.exists(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)
        if trainer is not None:
            weights_path = os.path.join(staging, self.WEIGHTS_FILE)
            atomic_write_npz(weights_path, trainer.model.state_dict())
            manifest["weights_sha256"] = sha256_file(weights_path)
        if self.baseline is not None:
            fallback_path = os.path.join(staging, self.FALLBACK_FILE)
            atomic_write_bytes(fallback_path, pickle.dumps(self.baseline))
            manifest["fallback_kind"] = self.baseline.kind
            manifest["fallback_sha256"] = sha256_file(fallback_path)
        atomic_write_json(os.path.join(staging, self.MANIFEST_FILE), manifest)
        # Crash window under test: everything staged, commit pending.  A
        # kill here must leave any previously saved model untouched.
        fault_point("planner.save")
        backup = directory.rstrip(os.sep) + ".old"
        if os.path.exists(backup):
            shutil.rmtree(backup)
        if os.path.isdir(directory):
            os.rename(directory, backup)
        os.rename(staging, directory)
        if os.path.exists(backup):
            shutil.rmtree(backup)
        _log.info(
            "model saved",
            extra={"directory": directory,
                   "degraded_from": self.degraded_from or ""},
        )

    @classmethod
    def _verify_payload(cls, directory: str, filename: str, expected: Optional[str]) -> str:
        path = os.path.join(directory, filename)
        if not os.path.exists(path):
            raise CorruptModelError(f"saved model is missing {filename!r} under {directory!r}")
        if expected is not None:
            actual = sha256_file(path)
            if actual != expected:
                raise CorruptModelError(
                    f"{filename!r} failed its manifest checksum: "
                    f"manifest={expected[:12]}… actual={actual[:12]}… — "
                    f"the model directory is corrupt; re-save or restore from backup"
                )
        return path

    @classmethod
    def load(cls, directory: str, db: Database) -> "TrainedPredictiveModel":
        """Reload a model saved by :meth:`save` against ``db``.

        The graph is recompiled from ``db`` with the persisted
        feature-statistics cutoff, the architecture is rebuilt from the
        persisted config, and the weights are restored — after every
        payload passes its manifest SHA-256 (mismatch raises
        :class:`CorruptModelError`).
        """
        with open(os.path.join(directory, cls.MANIFEST_FILE), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        config = PlannerConfig(**manifest["config"])
        planner = PredictiveQueryPlanner(db, config)
        binding = planner.plan(manifest["query"])
        graph = build_graph(db, stats_cutoff=manifest["stats_cutoff"])

        if manifest.get("fallback_kind"):
            fallback_path = cls._verify_payload(
                directory, cls.FALLBACK_FILE, manifest.get("fallback_sha256")
            )
            with open(fallback_path, "rb") as handle:
                baseline = pickle.load(handle)
            model = cls(
                db=db, binding=binding, graph=graph, config=config,
                baseline=baseline,
                degraded_from=manifest.get("degraded_from"),
                degraded_reason=manifest.get("degraded_reason"),
            )
            model.stats_cutoff = manifest["stats_cutoff"]
            return model

        metadata = GraphMetadata.from_graph(graph)
        rng = np.random.default_rng(config.seed)
        sampler = config.make_sampler(graph, np.random.default_rng(config.seed + 1))
        weights_path = cls._verify_payload(
            directory, cls.WEIGHTS_FILE, manifest.get("weights_sha256")
        )
        weights = np.load(weights_path)
        state = {name: weights[name] for name in weights.files}

        if binding.task_type == TaskType.LINK:
            network = TwoTowerModel(
                metadata,
                item_type=binding.item_table,
                num_items=graph.num_nodes(binding.item_table),
                embed_dim=config.hidden_dim,
                num_layers=config.num_layers,
                rng=rng,
                dropout=config.dropout,
                dtype=config.compute_dtype,
            )
            network.load_state_dict(state)
            network.eval()
            trainer = LinkTaskTrainer(
                network, graph, sampler, config=config.train_config(),
                num_negatives=config.num_negatives,
            )
            model = cls(db=db, binding=binding, graph=graph, config=config, link_trainer=trainer)
        else:
            network = HeteroGNN(
                metadata,
                hidden_dim=config.hidden_dim,
                out_dim=1,
                num_layers=config.num_layers,
                rng=rng,
                aggregation=config.aggregation,
                shared_weights=config.shared_weights,
                dropout=config.dropout,
                degree_features=config.degree_features,
                conv_type=config.conv_type,
                time_encoding=config.time_encoding,
                dtype=config.compute_dtype,
            )
            network.load_state_dict(state)
            network.eval()
            task = "binary" if binding.task_type == TaskType.BINARY else "regression"
            trainer = NodeTaskTrainer(network, graph, sampler, task, config=config.train_config())
            trainer._target_mean = manifest.get("target_mean", 0.0)
            trainer._target_std = manifest.get("target_std", 1.0)
            model = cls(db=db, binding=binding, graph=graph, config=config, node_trainer=trainer)
        model.stats_cutoff = manifest["stats_cutoff"]
        return model

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, cutoff: int, table_name: str = "predictions") -> "Table":
        """Predictions for every eligible entity, as a relational table.

        The result has the entity key column plus a ``score`` column
        (P(positive) for binary queries, predicted value for
        regression) and a ``cutoff`` timestamp column; it can be added
        to a database, queried with SQL, or exported to CSV — closing
        the declarative loop.
        """
        if self.task_type == TaskType.LINK:
            raise RuntimeError("materialize() supports node tasks; LIST queries rank instead")
        labels = build_label_table(self.db, self.binding, [int(cutoff)])
        scores = self.predict(labels.entity_keys, int(cutoff))
        from repro.relational.column import Column
        from repro.relational.schema import ColumnSpec, TableSchema
        from repro.relational.table import Table
        from repro.relational.types import DType

        key_dtype = self.binding.entity_schema.dtype_of(self.binding.entity_schema.primary_key)
        schema = TableSchema(
            table_name,
            [
                ColumnSpec("entity_key", key_dtype),
                ColumnSpec("score", DType.FLOAT64),
                ColumnSpec("cutoff", DType.TIMESTAMP),
            ],
            time_column="cutoff",
        )
        return Table(
            schema,
            {
                "entity_key": Column(labels.entity_keys, key_dtype),
                "score": Column(np.asarray(scores, dtype=np.float64), DType.FLOAT64),
                "cutoff": Column(
                    np.full(len(labels), int(cutoff), dtype=np.int64), DType.TIMESTAMP
                ),
            },
        )
