"""The query → trained-model compiler.

:class:`PredictiveQueryPlanner` is the paper's headline API: hand it a
database and a PQL string, and it produces a trained model —

1. **parse + validate** the query against the schema;
2. **label** every (entity, cutoff) pair by executing the window
   aggregate over the database;
3. **compile the graph**: rows → nodes, foreign keys → edges, feature
   statistics fitted strictly before the first label window;
4. **train** a heterogeneous GNN with time-respecting neighbor
   sampling (a two-tower retrieval model for LIST queries);
5. return a :class:`TrainedPredictiveModel` that predicts for any
   entity at any cutoff and evaluates itself on future cutoffs.

No per-task feature engineering appears anywhere in this path — that
is the point.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.obs import get_logger
from repro.obs import trace as obs_trace
from repro.eval.metrics import (
    accuracy,
    auroc,
    average_precision,
    brier_score,
    expected_calibration_error,
    f1_score,
    hit_rate_at_k,
    mae,
    mrr,
    ndcg_at_k,
    r2_score,
    rmse,
)
from repro.eval.splits import TemporalSplit
from repro.gnn.models import GraphMetadata, HeteroGNN, TwoTowerModel
from repro.gnn.trainer import LinkTaskTrainer, NodeTaskTrainer, TrainConfig
from repro.graph.builder import build_graph, node_index_for_keys
from repro.graph.hetero import HeteroGraph
from repro.graph.fast_sampler import VectorizedNeighborSampler
from repro.graph.sampler import NeighborSampler
from repro.pql.ast import PredictiveQuery, TaskType
from repro.pql.labeler import LabelTable, build_label_table
from repro.pql.parser import parse
from repro.pql.validate import QueryBinding, validate
from repro.relational.database import Database

__all__ = ["PlannerConfig", "PredictiveQueryPlanner", "TrainedPredictiveModel"]

_log = get_logger("pql.planner")


@dataclass
class PlannerConfig:
    """Hyperparameters of the compiled pipeline.

    The defaults are deliberately task-agnostic: the declarative claim
    is that one configuration serves every query.
    """

    hidden_dim: int = 32
    num_layers: int = 2
    fanouts: Optional[List[int]] = None  # default: [8] * num_layers
    dropout: float = 0.0
    aggregation: str = "mean"
    shared_weights: bool = False
    #: Message-passing layer family: "sage" (default) or "gat".
    conv_type: str = "sage"
    #: Seed-relative time encoding: "log" (default) or "fourier"
    #: (adds sin/cos channels at daily/weekly/monthly/yearly periods).
    time_encoding: str = "log"
    epochs: int = 30
    batch_size: int = 256
    lr: float = 5e-3
    weight_decay: float = 1e-5
    patience: int = 5
    clip_norm: float = 5.0
    seed: int = 0
    #: The leaky ablation switch (Figure 3); keep True everywhere else.
    time_respecting: bool = True
    #: Encode each node's time-valid in-degree per relation (strong
    #: recency/frequency signal even at depth 0); off for the pure
    #: message-passing-depth ablation (Figure 1).
    degree_features: bool = True
    #: Cap on training rows (subsampled reproducibly); None = no cap.
    max_train_rows: Optional[int] = None
    #: Negatives per positive for LIST queries.
    num_negatives: int = 4
    #: Weight positive BCE terms by the inverse class ratio (binary
    #: tasks with skewed labels); improves recall at some AUROC cost.
    auto_pos_weight: bool = False
    #: Neighbor-sampler implementation: "reference" (exact
    #: without-replacement semantics) or "vectorized" (~5x faster,
    #: with-replacement draws on high-degree nodes).
    sampler_impl: str = "reference"

    def make_sampler(self, graph, rng) -> "NeighborSampler":
        """Instantiate the configured sampler implementation."""
        if self.sampler_impl == "vectorized":
            return VectorizedNeighborSampler(
                graph, fanouts=self.resolved_fanouts(), rng=rng,
                time_respecting=self.time_respecting,
            )
        if self.sampler_impl != "reference":
            raise ValueError(
                f"sampler_impl must be 'reference' or 'vectorized', got {self.sampler_impl!r}"
            )
        return NeighborSampler(
            graph, fanouts=self.resolved_fanouts(), rng=rng,
            time_respecting=self.time_respecting,
        )

    def resolved_fanouts(self) -> List[int]:
        """Fanouts, defaulting to 8 per message-passing hop."""
        if self.fanouts is not None:
            return list(self.fanouts)
        return [8] * max(self.num_layers, 1)

    def train_config(self) -> TrainConfig:
        """The inner loop's hyperparameters."""
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            weight_decay=self.weight_decay,
            patience=self.patience,
            clip_norm=self.clip_norm,
            seed=self.seed,
        )


class PredictiveQueryPlanner:
    """Compiles PQL queries over one database into trained models."""

    def __init__(self, db: Database, config: Optional[PlannerConfig] = None) -> None:
        self.db = db
        self.config = config or PlannerConfig()

    def plan(self, query: Union[str, PredictiveQuery]) -> QueryBinding:
        """Parse (if needed) and validate a query against the schema."""
        parsed = parse(query) if isinstance(query, str) else query
        return validate(parsed, self.db)

    def fit(
        self,
        query: Union[str, PredictiveQuery],
        split: TemporalSplit,
    ) -> "TrainedPredictiveModel":
        """Compile and train; returns the deployable model."""
        with obs_trace.span("planner.fit"):
            with obs_trace.span("planner.parse"):
                binding = self.plan(query)
            _log.info(
                "query compiled", extra={"task_type": binding.task_type.value,
                                         "entity": binding.query.entity_table},
            )
            with obs_trace.span("planner.label") as label_span:
                train_labels = build_label_table(self.db, binding, split.train_cutoffs)
                val_labels = build_label_table(self.db, binding, [split.val_cutoff])
                label_span.add_counter("label.train_rows", len(train_labels))
                label_span.add_counter("label.val_rows", len(val_labels))
                label_span.add_counter("label.train_cutoffs", len(split.train_cutoffs))
            if len(train_labels) == 0:
                raise ValueError("no training rows: check cutoffs against the data's time span")
            _log.info(
                "labels built", extra={"train_rows": len(train_labels), "val_rows": len(val_labels)},
            )

            train_labels = self._maybe_subsample(train_labels)
            stats_cutoff = min(split.train_cutoffs)
            with obs_trace.span("planner.graph_build") as build_span:
                graph = build_graph(self.db, stats_cutoff=stats_cutoff)
                build_span.add_counter("graph.nodes", graph.total_nodes())
                build_span.add_counter("graph.edges", graph.total_edges())
                build_span.add_counter("graph.node_types", len(graph.node_types))
                build_span.add_counter("graph.edge_types", len(graph.edge_types))
            _log.info(
                "graph compiled",
                extra={"nodes": graph.total_nodes(), "edges": graph.total_edges()},
            )
            metadata = GraphMetadata.from_graph(graph)
            rng = np.random.default_rng(self.config.seed)
            sampler = self.config.make_sampler(graph, np.random.default_rng(self.config.seed + 1))

            with obs_trace.span("planner.train"):
                if binding.task_type == TaskType.LINK:
                    model = self._fit_link(binding, split, graph, metadata, sampler, rng, train_labels, val_labels)
                else:
                    model = self._fit_node(binding, split, graph, metadata, sampler, rng, train_labels, val_labels)
                trainer = model.node_trainer or model.link_trainer
            _log.info(
                "training finished",
                extra={"epochs": len(trainer.history.train_loss),
                       "best_epoch": trainer.history.best_epoch},
            )
            model.stats_cutoff = stats_cutoff
        return model

    # ------------------------------------------------------------------
    # Node tasks (binary / regression)
    # ------------------------------------------------------------------
    def _fit_node(self, binding, split, graph, metadata, sampler, rng, train_labels, val_labels):
        entity_type = binding.query.entity_table
        model = HeteroGNN(
            metadata,
            hidden_dim=self.config.hidden_dim,
            out_dim=1,
            num_layers=self.config.num_layers,
            rng=rng,
            aggregation=self.config.aggregation,
            shared_weights=self.config.shared_weights,
            dropout=self.config.dropout,
            degree_features=self.config.degree_features,
            conv_type=self.config.conv_type,
            time_encoding=self.config.time_encoding,
        )
        task = "binary" if binding.task_type == TaskType.BINARY else "regression"
        pos_weight = None
        if task == "binary" and self.config.auto_pos_weight:
            rate = float(np.clip(train_labels.positive_rate, 1e-3, 1 - 1e-3))
            pos_weight = (1.0 - rate) / rate
        trainer = NodeTaskTrainer(
            model, graph, sampler, task,
            config=self.config.train_config(),
            pos_weight=pos_weight,
        )
        train_ids = node_index_for_keys(graph, entity_type, train_labels.entity_keys)
        kwargs = {}
        if len(val_labels):
            kwargs = dict(
                val_ids=node_index_for_keys(graph, entity_type, val_labels.entity_keys),
                val_times=val_labels.cutoffs,
                val_labels=val_labels.labels,
            )
        trainer.fit(entity_type, train_ids, train_labels.cutoffs, train_labels.labels, **kwargs)
        return TrainedPredictiveModel(
            db=self.db,
            binding=binding,
            graph=graph,
            config=self.config,
            node_trainer=trainer,
        )

    # ------------------------------------------------------------------
    # Link tasks
    # ------------------------------------------------------------------
    def _fit_link(self, binding, split, graph, metadata, sampler, rng, train_labels, val_labels):
        entity_type = binding.query.entity_table
        item_type = binding.item_table
        model = TwoTowerModel(
            metadata,
            item_type=item_type,
            num_items=graph.num_nodes(item_type),
            embed_dim=self.config.hidden_dim,
            num_layers=self.config.num_layers,
            rng=rng,
            dropout=self.config.dropout,
        )
        trainer = LinkTaskTrainer(
            model,
            graph,
            sampler,
            config=self.config.train_config(),
            num_negatives=self.config.num_negatives,
        )
        q_ids, q_times, pos_items = self._explode_pairs(graph, entity_type, item_type, train_labels)
        if len(q_ids) == 0:
            raise ValueError("no positive (entity, item) pairs in the training windows")
        kwargs = {}
        vq, vt, vi = self._explode_pairs(graph, entity_type, item_type, val_labels)
        if len(vq):
            kwargs = dict(val_query_ids=vq, val_query_times=vt, val_pos_item_ids=vi)
        trainer.fit(entity_type, q_ids, q_times, pos_items, **kwargs)
        return TrainedPredictiveModel(
            db=self.db,
            binding=binding,
            graph=graph,
            config=self.config,
            link_trainer=trainer,
        )

    def _explode_pairs(self, graph, entity_type, item_type, labels: LabelTable):
        """Flatten a LIST label table into (query, time, item) triples."""
        queries, times, items = [], [], []
        for key, cutoff, item_keys in zip(
            labels.entity_keys.tolist(), labels.cutoffs.tolist(), labels.item_keys or []
        ):
            for item_key in np.asarray(item_keys).tolist():
                queries.append(key)
                times.append(cutoff)
                items.append(item_key)
        if not queries:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        q_ids = node_index_for_keys(graph, entity_type, np.asarray(queries))
        item_ids = node_index_for_keys(graph, item_type, np.asarray(items))
        return q_ids, np.asarray(times, dtype=np.int64), item_ids

    def _maybe_subsample(self, labels: LabelTable) -> LabelTable:
        cap = self.config.max_train_rows
        if cap is None or len(labels) <= cap:
            return labels
        rng = np.random.default_rng(self.config.seed + 7)
        picks = rng.choice(len(labels), size=cap, replace=False)
        return labels.subset(np.sort(picks))


class TrainedPredictiveModel:
    """A fitted predictive query, ready to predict and self-evaluate."""

    def __init__(
        self,
        db: Database,
        binding: QueryBinding,
        graph: HeteroGraph,
        config: PlannerConfig,
        node_trainer: Optional[NodeTaskTrainer] = None,
        link_trainer: Optional[LinkTaskTrainer] = None,
    ) -> None:
        self.db = db
        self.binding = binding
        self.graph = graph
        self.config = config
        self.node_trainer = node_trainer
        self.link_trainer = link_trainer
        #: Feature-statistics cutoff used at fit time (set by the planner;
        #: persisted so a reloaded model rebuilds the identical graph).
        self.stats_cutoff: Optional[int] = None

    @property
    def task_type(self) -> TaskType:
        """The compiled task type."""
        return self.binding.task_type

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, entity_keys: np.ndarray, cutoff: int) -> np.ndarray:
        """Predictions for given entities as of ``cutoff``.

        Binary → P(positive); regression → value on the label scale.
        For link tasks use :meth:`rank_items`.
        """
        if self.node_trainer is None:
            raise RuntimeError("predict() is for node tasks; use rank_items() for LIST queries")
        entity_type = self.binding.query.entity_table
        ids = node_index_for_keys(self.graph, entity_type, np.asarray(entity_keys))
        times = np.full(len(ids), int(cutoff), dtype=np.int64)
        return self.node_trainer.predict(entity_type, ids, times)

    def rank_items(self, entity_keys: np.ndarray, cutoff: int, k: int = 10):
        """Top-``k`` item keys and scores per entity (link tasks only)."""
        if self.link_trainer is None:
            raise RuntimeError("rank_items() is only available for LIST queries")
        entity_type = self.binding.query.entity_table
        item_type = self.binding.item_table
        q_ids = node_index_for_keys(self.graph, entity_type, np.asarray(entity_keys))
        times = np.full(len(q_ids), int(cutoff), dtype=np.int64)
        item_ids = np.arange(self.graph.num_nodes(item_type))
        scores = self.link_trainer.score_against_items(entity_type, q_ids, times, item_ids)
        item_keys = self.graph.node_keys[item_type]
        results = []
        for row in scores:
            top = np.argsort(-row, kind="stable")[:k]
            results.append((item_keys[top], row[top]))
        return results

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, cutoff: int, k: int = 10) -> Dict[str, float]:
        """Metrics against ground-truth labels computed at ``cutoff``."""
        with obs_trace.span("planner.evaluate") as eval_span:
            labels = build_label_table(self.db, self.binding, [int(cutoff)])
            eval_span.add_counter("eval.rows", len(labels))
            if self.task_type == TaskType.LINK:
                return self._evaluate_link(labels, k)
            predictions = self.predict(labels.entity_keys, int(cutoff))
            if self.task_type == TaskType.BINARY:
                return {
                    "auroc": auroc(labels.labels, predictions),
                    "average_precision": average_precision(labels.labels, predictions),
                    "accuracy": accuracy(labels.labels, (predictions > 0.5).astype(float)),
                    "f1": f1_score(labels.labels, (predictions > 0.5).astype(float)),
                    "brier": brier_score(labels.labels, predictions),
                    "ece": expected_calibration_error(labels.labels, predictions),
                    "num_examples": float(len(labels)),
                    "positive_rate": labels.positive_rate,
                }
            return {
                "mae": mae(labels.labels, predictions),
                "rmse": rmse(labels.labels, predictions),
                "r2": r2_score(labels.labels, predictions),
                "num_examples": float(len(labels)),
            }

    def _evaluate_link(self, labels: LabelTable, k: int) -> Dict[str, float]:
        entity_type = self.binding.query.entity_table
        item_type = self.binding.item_table
        # Standard retrieval protocol: evaluate entities with >= 1 positive.
        keep = [i for i, items in enumerate(labels.item_keys or []) if len(items) > 0]
        if not keep:
            return {"mrr": float("nan"), f"hit_rate@{k}": float("nan"), f"ndcg@{k}": float("nan"), "num_queries": 0.0}
        subset = labels.subset(np.asarray(keep))
        q_ids = node_index_for_keys(self.graph, entity_type, subset.entity_keys)
        item_ids = np.arange(self.graph.num_nodes(item_type))
        scores = self.link_trainer.score_against_items(
            entity_type, q_ids, subset.cutoffs, item_ids
        )
        item_key_to_node = {key: i for i, key in enumerate(self.graph.node_keys[item_type].tolist())}
        relevance = []
        for item_keys in subset.item_keys:
            mask = np.zeros(len(item_ids), dtype=bool)
            for key in np.asarray(item_keys).tolist():
                node = item_key_to_node.get(key)
                if node is not None:
                    mask[node] = True
            relevance.append(mask)
        score_lists = [scores[i] for i in range(len(scores))]
        return {
            "mrr": mrr(score_lists, relevance),
            f"hit_rate@{k}": hit_rate_at_k(score_lists, relevance, k),
            f"ndcg@{k}": ndcg_at_k(score_lists, relevance, k),
            "num_queries": float(len(score_lists)),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist the trained model to ``directory``.

        Layout: ``manifest.json`` (query text, planner config, task
        metadata) and ``weights.npz`` (every parameter by dotted name).
        The database itself is *not* saved — reload against the same
        (or a schema-compatible, refreshed) database.
        """
        os.makedirs(directory, exist_ok=True)
        trainer = self.node_trainer or self.link_trainer
        manifest = {
            "query": str(self.binding.query),
            "config": dataclasses.asdict(self.config),
            "task_type": self.task_type.value,
            "stats_cutoff": self.stats_cutoff,
        }
        if self.node_trainer is not None:
            manifest["target_mean"] = self.node_trainer._target_mean
            manifest["target_std"] = self.node_trainer._target_std
        with open(os.path.join(directory, "manifest.json"), "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        state = trainer.model.state_dict()
        np.savez(os.path.join(directory, "weights.npz"), **state)

    @classmethod
    def load(cls, directory: str, db: Database) -> "TrainedPredictiveModel":
        """Reload a model saved by :meth:`save` against ``db``.

        The graph is recompiled from ``db`` with the persisted
        feature-statistics cutoff, the architecture is rebuilt from the
        persisted config, and the weights are restored.
        """
        with open(os.path.join(directory, "manifest.json"), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        config = PlannerConfig(**manifest["config"])
        planner = PredictiveQueryPlanner(db, config)
        binding = planner.plan(manifest["query"])
        graph = build_graph(db, stats_cutoff=manifest["stats_cutoff"])
        metadata = GraphMetadata.from_graph(graph)
        rng = np.random.default_rng(config.seed)
        sampler = config.make_sampler(graph, np.random.default_rng(config.seed + 1))
        weights = np.load(os.path.join(directory, "weights.npz"))
        state = {name: weights[name] for name in weights.files}

        if binding.task_type == TaskType.LINK:
            network = TwoTowerModel(
                metadata,
                item_type=binding.item_table,
                num_items=graph.num_nodes(binding.item_table),
                embed_dim=config.hidden_dim,
                num_layers=config.num_layers,
                rng=rng,
                dropout=config.dropout,
            )
            network.load_state_dict(state)
            network.eval()
            trainer = LinkTaskTrainer(
                network, graph, sampler, config=config.train_config(),
                num_negatives=config.num_negatives,
            )
            model = cls(db=db, binding=binding, graph=graph, config=config, link_trainer=trainer)
        else:
            network = HeteroGNN(
                metadata,
                hidden_dim=config.hidden_dim,
                out_dim=1,
                num_layers=config.num_layers,
                rng=rng,
                aggregation=config.aggregation,
                shared_weights=config.shared_weights,
                dropout=config.dropout,
                degree_features=config.degree_features,
                conv_type=config.conv_type,
                time_encoding=config.time_encoding,
            )
            network.load_state_dict(state)
            network.eval()
            task = "binary" if binding.task_type == TaskType.BINARY else "regression"
            trainer = NodeTaskTrainer(network, graph, sampler, task, config=config.train_config())
            trainer._target_mean = manifest.get("target_mean", 0.0)
            trainer._target_std = manifest.get("target_std", 1.0)
            model = cls(db=db, binding=binding, graph=graph, config=config, node_trainer=trainer)
        model.stats_cutoff = manifest["stats_cutoff"]
        return model

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, cutoff: int, table_name: str = "predictions") -> "Table":
        """Predictions for every eligible entity, as a relational table.

        The result has the entity key column plus a ``score`` column
        (P(positive) for binary queries, predicted value for
        regression) and a ``cutoff`` timestamp column; it can be added
        to a database, queried with SQL, or exported to CSV — closing
        the declarative loop.
        """
        if self.node_trainer is None:
            raise RuntimeError("materialize() supports node tasks; LIST queries rank instead")
        labels = build_label_table(self.db, self.binding, [int(cutoff)])
        scores = self.predict(labels.entity_keys, int(cutoff))
        from repro.relational.column import Column
        from repro.relational.schema import ColumnSpec, TableSchema
        from repro.relational.table import Table
        from repro.relational.types import DType

        key_dtype = self.binding.entity_schema.dtype_of(self.binding.entity_schema.primary_key)
        schema = TableSchema(
            table_name,
            [
                ColumnSpec("entity_key", key_dtype),
                ColumnSpec("score", DType.FLOAT64),
                ColumnSpec("cutoff", DType.TIMESTAMP),
            ],
            time_column="cutoff",
        )
        return Table(
            schema,
            {
                "entity_key": Column(labels.entity_keys, key_dtype),
                "score": Column(np.asarray(scores, dtype=np.float64), DType.FLOAT64),
                "cutoff": Column(
                    np.full(len(labels), int(cutoff), dtype=np.int64), DType.TIMESTAMP
                ),
            },
        )
