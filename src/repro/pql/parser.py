"""Recursive-descent parser for PQL.

Grammar (keywords case-insensitive)::

    query       := PREDICT target [comparison]
                   FOR EACH ident DOT ident
                   [WHERE conditions]
                   ASSUMING HORIZON number (DAYS | HOURS)
    target      := agg_func LPAREN ident [DOT ident] [WHERE conditions] RPAREN
                 | LIST LPAREN ident DOT ident [WHERE conditions] RPAREN
    agg_func    := COUNT | SUM | AVG | MIN | MAX | EXISTS | COUNT_DISTINCT
    comparison  := op number
    conditions  := condition (AND condition)*
    condition   := [ident DOT] ident (op literal | IS [NOT] NULL)
    literal     := number | string | TRUE | FALSE
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.pql.ast import Aggregate, Comparison, Condition, ListTarget, PredictiveQuery
from repro.pql.tokens import Token, TokenKind, tokenize

__all__ = ["parse", "PQLSyntaxError"]

_AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX", "EXISTS", "COUNT_DISTINCT"}
_NO_COLUMN_FUNCS = {"COUNT", "EXISTS"}


class PQLSyntaxError(ValueError):
    """Raised when a query does not match the PQL grammar."""


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            expectation = value or kind
            raise PQLSyntaxError(
                f"expected {expectation} at position {token.position}, got {token.value!r}"
            )
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # -- grammar --------------------------------------------------------
    def parse(self) -> PredictiveQuery:
        self.expect(TokenKind.KEYWORD, "PREDICT")
        target = self._target()
        comparison = self._comparison()
        self.expect(TokenKind.KEYWORD, "FOR")
        self.expect(TokenKind.KEYWORD, "EACH")
        entity_table = self.expect(TokenKind.IDENT).value
        self.expect(TokenKind.DOT)
        entity_key = self.expect(TokenKind.IDENT).value
        entity_conditions: Tuple[Condition, ...] = ()
        entity_max_age: Optional[int] = None
        if self.accept(TokenKind.KEYWORD, "WHERE"):
            entity_conditions, entity_max_age = self._entity_conditions()
        self.expect(TokenKind.KEYWORD, "ASSUMING")
        self.expect(TokenKind.KEYWORD, "HORIZON")
        amount_token = self.expect(TokenKind.NUMBER)
        amount = float(amount_token.value)
        unit = self.peek()
        if unit.kind == TokenKind.KEYWORD and unit.value in ("DAYS", "HOURS"):
            self.advance()
            seconds = int(round(amount * (86400 if unit.value == "DAYS" else 3600)))
        else:
            raise PQLSyntaxError(
                f"expected DAYS or HOURS at position {unit.position}, got {unit.value!r}"
            )
        if seconds <= 0:
            raise PQLSyntaxError("horizon must be positive")
        self.expect(TokenKind.EOF)
        return PredictiveQuery(
            target=target,
            comparison=comparison,
            entity_table=entity_table,
            entity_key=entity_key,
            entity_conditions=entity_conditions,
            horizon_seconds=seconds,
            entity_max_age_seconds=entity_max_age,
        )

    def _target(self) -> Union[Aggregate, ListTarget]:
        token = self.peek()
        if token.kind != TokenKind.KEYWORD or (token.value not in _AGG_FUNCS and token.value != "LIST"):
            raise PQLSyntaxError(
                f"expected an aggregate or LIST at position {token.position}, got {token.value!r}"
            )
        func = self.advance().value
        self.expect(TokenKind.LPAREN)
        table = self.expect(TokenKind.IDENT).value
        column: Optional[str] = None
        if self.accept(TokenKind.DOT):
            column = self.expect(TokenKind.IDENT).value
        via: Optional[str] = None
        if self.accept(TokenKind.KEYWORD, "VIA"):
            via = self.expect(TokenKind.IDENT).value
        conditions: Tuple[Condition, ...] = ()
        if self.accept(TokenKind.KEYWORD, "WHERE"):
            conditions = self._conditions()
        self.expect(TokenKind.RPAREN)
        if func == "LIST":
            if column is None:
                raise PQLSyntaxError("LIST target requires table.column")
            if via is not None:
                raise PQLSyntaxError("VIA is not supported for LIST targets")
            return ListTarget(table=table, column=column, conditions=conditions)
        if func in _NO_COLUMN_FUNCS:
            if column is not None:
                # COUNT(t.c) counts non-null c; we accept and keep the column.
                pass
        elif column is None:
            raise PQLSyntaxError(f"{func} requires a column, e.g. {func}(table.column)")
        return Aggregate(
            func=func.lower(), table=table, column=column, conditions=conditions, via=via
        )

    def _comparison(self) -> Optional[Comparison]:
        token = self.peek()
        if token.kind != TokenKind.OPERATOR:
            return None
        op = self.advance().value
        value_token = self.expect(TokenKind.NUMBER)
        value = float(value_token.value)
        if value.is_integer():
            value = int(value)
        return Comparison(op=op, value=value)

    def _entity_conditions(self) -> Tuple[Tuple[Condition, ...], Optional[int]]:
        """Entity WHERE clause: static conditions plus optional AGE filter."""
        conditions: List[Condition] = []
        max_age: Optional[int] = None
        while True:
            if self.peek().kind == TokenKind.KEYWORD and self.peek().value == "AGE":
                if max_age is not None:
                    raise PQLSyntaxError("duplicate AGE filter in entity WHERE clause")
                max_age = self._age_filter()
            else:
                conditions.append(self._condition())
            if not self.accept(TokenKind.KEYWORD, "AND"):
                break
        return tuple(conditions), max_age

    def _age_filter(self) -> int:
        self.expect(TokenKind.KEYWORD, "AGE")
        op = self.expect(TokenKind.OPERATOR)
        if op.value not in ("<", "<="):
            raise PQLSyntaxError(
                f"AGE filter only supports < or <=, got {op.value!r} at position {op.position}"
            )
        amount = float(self.expect(TokenKind.NUMBER).value)
        unit = self.peek()
        if unit.kind == TokenKind.KEYWORD and unit.value in ("DAYS", "HOURS"):
            self.advance()
        else:
            raise PQLSyntaxError(
                f"expected DAYS or HOURS after AGE bound at position {unit.position}"
            )
        seconds = int(round(amount * (86400 if unit.value == "DAYS" else 3600)))
        if seconds <= 0:
            raise PQLSyntaxError("AGE bound must be positive")
        return seconds

    def _conditions(self) -> Tuple[Condition, ...]:
        conditions = [self._condition()]
        while self.accept(TokenKind.KEYWORD, "AND"):
            conditions.append(self._condition())
        return tuple(conditions)

    def _condition(self) -> Condition:
        first = self.expect(TokenKind.IDENT).value
        if self.accept(TokenKind.DOT):
            # Qualified column: we keep only the column name; the
            # validator checks the qualifier matches the target table.
            column = self.expect(TokenKind.IDENT).value
        else:
            column = first
        if self.accept(TokenKind.KEYWORD, "IS"):
            negated = self.accept(TokenKind.KEYWORD, "NOT") is not None
            self.expect(TokenKind.KEYWORD, "NULL")
            return Condition(column=column, op="is_not_null" if negated else "is_null", literal=None)
        op_token = self.expect(TokenKind.OPERATOR)
        literal = self._literal()
        return Condition(column=column, op=op_token.value, literal=literal)

    def _literal(self) -> Union[int, float, str, bool]:
        token = self.peek()
        if token.kind == TokenKind.NUMBER:
            self.advance()
            value = float(token.value)
            return int(value) if value.is_integer() else value
        if token.kind == TokenKind.STRING:
            self.advance()
            return token.value
        if token.kind == TokenKind.KEYWORD and token.value in ("TRUE", "FALSE"):
            self.advance()
            return token.value == "TRUE"
        raise PQLSyntaxError(
            f"expected a literal at position {token.position}, got {token.value!r}"
        )


def parse(text: str) -> PredictiveQuery:
    """Parse a PQL query string into a :class:`PredictiveQuery`."""
    return _Parser(text).parse()
