"""Tokenizer for PQL."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Token", "TokenKind", "tokenize", "PQLTokenError"]

KEYWORDS = {
    "PREDICT",
    "FOR",
    "EACH",
    "WHERE",
    "ASSUMING",
    "HORIZON",
    "DAYS",
    "HOURS",
    "AND",
    "LIST",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "EXISTS",
    "COUNT_DISTINCT",
    "TRUE",
    "FALSE",
    "NOT",
    "NULL",
    "IS",
    "AGE",
    "VIA",
}

OPERATORS = {">", ">=", "<", "<=", "=", "!="}


class TokenKind:
    """Token categories (plain string constants)."""

    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    DOT = "DOT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


class PQLTokenError(ValueError):
    """Raised on an unrecognizable character sequence."""


def tokenize(text: str) -> List[Token]:
    """Split a PQL query into tokens (keywords are case-insensitive)."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if char == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", i))
            i += 1
        elif char == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", i))
            i += 1
        elif char == ".":
            tokens.append(Token(TokenKind.DOT, ".", i))
            i += 1
        elif char in "<>!=":
            two = text[i : i + 2]
            if two in OPERATORS:
                tokens.append(Token(TokenKind.OPERATOR, two, i))
                i += 2
            elif char in OPERATORS:
                tokens.append(Token(TokenKind.OPERATOR, char, i))
                i += 1
            else:
                raise PQLTokenError(f"unexpected character {char!r} at position {i}")
        elif char == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise PQLTokenError(f"unterminated string literal at position {i}")
            tokens.append(Token(TokenKind.STRING, text[i + 1 : end], i))
            i = end + 1
        elif char.isdigit() or (char == "-" and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            tokens.append(Token(TokenKind.NUMBER, text[start:i], start))
        elif char.isalpha() or char == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENT, word, start))
        else:
            raise PQLTokenError(f"unexpected character {char!r} at position {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
