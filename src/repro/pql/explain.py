"""Relation-level explanations for trained predictive models.

``explain_relations`` answers "which foreign-key relationships does
this model actually use?" by perturbation: it re-scores the same
entities with one edge type knocked out of the sampled subgraph (its
messages removed and its degree channel zeroed) and reports the mean
absolute change in the prediction.  A relation the model ignores moves
nothing; the relation carrying the signal moves predictions a lot.

This is the declarative analogue of feature importance: the analyst
never wrote features, so importances are reported on the schema's own
vocabulary — its foreign keys.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.hetero import EdgeType
from repro.graph.sampler import NeighborSampler, SampledSubgraph
from repro.nn.tensor import no_grad
from repro.pql.ast import TaskType

__all__ = ["explain_relations"]


def _knock_out(subgraph: SampledSubgraph, edge_type: EdgeType, graph) -> None:
    """Remove one edge type's messages and zero its degree channel."""
    subgraph._edges.pop(edge_type, None)
    dst = edge_type.dst
    incoming = graph.edge_types_into(dst)
    if edge_type in incoming:
        subgraph.zero_degree_channel(dst, incoming.index(edge_type))


def explain_relations(
    model,
    entity_keys: np.ndarray,
    cutoff: int,
    seed: int = 0,
) -> Dict[str, float]:
    """Per-relation importance for a node-task model.

    Parameters
    ----------
    model:
        A :class:`~repro.pql.planner.TrainedPredictiveModel` for a
        binary or regression query.
    entity_keys:
        Entities to explain (importances are averaged over them).
    cutoff:
        Prediction time.
    seed:
        Seed for the sampling used during explanation (the same
        subgraphs are reused for the baseline and every knockout, so
        deltas isolate the relation, not sampling noise).

    Returns
    -------
    dict
        ``str(edge_type) -> mean |Δ prediction|``, sorted descending.
    """
    if model.task_type not in (TaskType.BINARY, TaskType.REGRESSION):
        raise ValueError("explain_relations supports binary and regression tasks only")
    trainer = model.node_trainer
    graph = model.graph
    entity_type = model.binding.query.entity_table
    from repro.graph.builder import node_index_for_keys

    ids = node_index_for_keys(graph, entity_type, np.asarray(entity_keys))
    times = np.full(len(ids), int(cutoff), dtype=np.int64)

    def forward(subgraph: SampledSubgraph) -> np.ndarray:
        with no_grad():
            raw = trainer.model(subgraph, graph).reshape(len(subgraph.seed_locals))
            if model.task_type == TaskType.BINARY:
                return raw.sigmoid().data
            return raw.data * trainer._target_std + trainer._target_mean

    trainer.model.eval()
    importances: Dict[str, float] = {}
    baseline_scores: List[np.ndarray] = []
    knocked_scores: Dict[EdgeType, List[np.ndarray]] = {et: [] for et in graph.edge_types}
    batch = trainer.config.batch_size

    for start in range(0, len(ids), batch):
        stop = start + batch
        # One sampler per batch with a fixed seed: the baseline and all
        # knockouts see the *same* sampled neighborhoods.
        sampler = NeighborSampler(
            graph,
            fanouts=trainer.sampler.fanouts,
            rng=np.random.default_rng(seed),
            time_respecting=trainer.sampler.time_respecting,
        )
        base_subgraph = sampler.sample(entity_type, ids[start:stop], times[start:stop])
        baseline_scores.append(forward(base_subgraph))
        for edge_type in graph.edge_types:
            sampler_k = NeighborSampler(
                graph,
                fanouts=trainer.sampler.fanouts,
                rng=np.random.default_rng(seed),
                time_respecting=trainer.sampler.time_respecting,
            )
            subgraph = sampler_k.sample(entity_type, ids[start:stop], times[start:stop])
            _knock_out(subgraph, edge_type, graph)
            knocked_scores[edge_type].append(forward(subgraph))

    baseline = np.concatenate(baseline_scores)
    for edge_type, blocks in knocked_scores.items():
        knocked = np.concatenate(blocks)
        importances[str(edge_type)] = float(np.abs(baseline - knocked).mean())
    return dict(sorted(importances.items(), key=lambda kv: -kv[1]))
