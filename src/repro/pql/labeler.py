"""Label computation: window aggregates over the database.

For each cutoff time ``t`` in the training/evaluation schedule, the
labeler finds the entities that exist at ``t`` (and pass the entity
filter), collects the target-table facts with
``t < fact.time <= t + horizon`` (and the target filter), and reduces
them per entity with the query's aggregate.  This is the ground truth
the declarative pipeline trains against — computed *only* from data in
the future window, never visible to the model whose inputs stop at
``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.pql.ast import Aggregate, Comparison, Condition, TaskType
from repro.pql.validate import QueryBinding
from repro.relational.algebra import aggregate_grouped_values
from repro.relational.database import Database
from repro.relational.table import Table
from repro.relational.types import DType

__all__ = ["LabelTable", "build_label_table", "condition_mask"]


@dataclass
class LabelTable:
    """Entity/cutoff/label triples ready for model training.

    ``labels`` is a float array for binary (0/1) and regression tasks;
    for link tasks it is all-NaN and ``item_keys`` holds, per row, the
    array of item primary keys appearing in the window (possibly
    empty).
    """

    task_type: TaskType
    entity_table: str
    entity_keys: np.ndarray
    cutoffs: np.ndarray
    labels: np.ndarray
    item_keys: Optional[List[np.ndarray]] = None

    def __len__(self) -> int:
        return len(self.entity_keys)

    @property
    def positive_rate(self) -> float:
        """Fraction of positive labels (binary tasks)."""
        if self.task_type != TaskType.BINARY or len(self.labels) == 0:
            return float("nan")
        return float(self.labels.mean())

    def subset(self, indices: np.ndarray) -> "LabelTable":
        """Row subset (used for split slicing and subsampling)."""
        indices = np.asarray(indices)
        return LabelTable(
            task_type=self.task_type,
            entity_table=self.entity_table,
            entity_keys=self.entity_keys[indices],
            cutoffs=self.cutoffs[indices],
            labels=self.labels[indices],
            item_keys=[self.item_keys[i] for i in indices.tolist()] if self.item_keys else None,
        )


def condition_mask(table: Table, condition: Condition) -> np.ndarray:
    """Boolean row mask for one PQL condition."""
    column = table[condition.column]
    if condition.op == "is_null":
        return column.null_mask()
    if condition.op == "is_not_null":
        return ~column.null_mask()
    literal = condition.literal
    if column.dtype == DType.BOOL and isinstance(literal, bool):
        literal_value = bool(literal)
    else:
        literal_value = literal
    ops = {
        ">": column.greater_than,
        ">=": column.greater_equal,
        "<": column.less_than,
        "<=": column.less_equal,
        "=": column.equals,
        "!=": column.not_equals,
    }
    if condition.op not in ops:
        raise ValueError(f"unsupported condition operator {condition.op!r}")
    return ops[condition.op](literal_value)


def _apply_conditions(table: Table, conditions) -> np.ndarray:
    mask = np.ones(table.num_rows, dtype=bool)
    for condition in conditions:
        mask &= condition_mask(table, condition)
    return mask


def _compare(values: np.ndarray, comparison: Comparison) -> np.ndarray:
    ops = {
        ">": np.greater,
        ">=": np.greater_equal,
        "<": np.less,
        "<=": np.less_equal,
        "=": np.equal,
        "!=": np.not_equal,
    }
    return ops[comparison.op](values, comparison.value).astype(np.float64)


def build_label_table(
    db: Database,
    binding: QueryBinding,
    cutoffs: Sequence[int],
) -> LabelTable:
    """Materialize labels for every (eligible entity, cutoff) pair.

    Rows whose aggregate is undefined (avg/min/max over an empty
    window) are dropped for regression tasks.  Link-task rows keep
    empty item sets; the planner decides whether to train on them.
    """
    query = binding.query
    entity_table = db[query.entity_table]
    target_table = db[query.target.table]
    time_column = target_table[binding.target_schema.time_column]
    if binding.via_fk is not None:
        # Two-hop path: fact --via_fk--> via row --entity_fk--> entity.
        fk_column = target_table[binding.via_fk.column]
        via_table = db[binding.via_schema.name]
        via_pk_values = via_table[binding.via_schema.primary_key]
        via_entity_values = via_table[binding.entity_fk.column]
        via_to_entity = {
            via_pk_values.get(i): via_entity_values.get(i)
            for i in range(via_table.num_rows)
        }
    else:
        fk_column = target_table[binding.entity_fk.column]
        via_to_entity = None

    entity_keys_all = entity_table[binding.entity_schema.primary_key].values
    entity_static_mask = _apply_conditions(entity_table, query.entity_conditions)
    entity_time = None
    if binding.entity_schema.time_column is not None:
        entity_time = entity_table[binding.entity_schema.time_column]

    target_static_mask = _apply_conditions(target_table, query.target.conditions)
    key_to_slot = {key: i for i, key in enumerate(entity_keys_all.tolist())}

    out_keys: List[np.ndarray] = []
    out_cutoffs: List[np.ndarray] = []
    out_labels: List[np.ndarray] = []
    out_items: List[np.ndarray] = []
    is_link = binding.task_type == TaskType.LINK
    item_values = target_table[query.target.column] if is_link else None

    for cutoff in cutoffs:
        eligible = entity_static_mask.copy()
        if entity_time is not None:
            eligible &= entity_time.less_equal(int(cutoff))
            if query.entity_max_age_seconds is not None:
                eligible &= entity_time.greater_than(int(cutoff) - query.entity_max_age_seconds)
        eligible_slots = np.flatnonzero(eligible)
        if len(eligible_slots) == 0:
            continue
        slot_of = np.full(len(entity_keys_all), -1, dtype=np.int64)
        slot_of[eligible_slots] = np.arange(len(eligible_slots))

        window = (
            target_static_mask
            & time_column.greater_than(int(cutoff))
            & time_column.less_equal(int(cutoff) + query.horizon_seconds)
            & ~fk_column.null_mask()
        )
        fact_rows = np.flatnonzero(window)
        fact_groups = np.full(len(fact_rows), -1, dtype=np.int64)
        for i, key in enumerate(fk_column.values[fact_rows].tolist()):
            if via_to_entity is not None:
                key = via_to_entity.get(key)
                if key is None:
                    continue
            slot = key_to_slot.get(key, -1)
            fact_groups[i] = slot_of[slot] if slot >= 0 else -1

        keys = entity_keys_all[eligible_slots]
        cut_array = np.full(len(eligible_slots), int(cutoff), dtype=np.int64)
        if is_link:
            labels = np.full(len(eligible_slots), np.nan)
            items: List[List[object]] = [[] for _ in range(len(eligible_slots))]
            valid_item = ~item_values.null_mask()
            for local, row in zip(fact_groups.tolist(), fact_rows.tolist()):
                if local >= 0 and valid_item[row]:
                    items[local].append(item_values.values[row])
            out_items.extend(np.asarray(group) for group in items)
        else:
            labels = _aggregate_labels(
                binding, target_table, fact_rows, fact_groups, len(eligible_slots)
            )
            if binding.query.comparison is not None:
                labels = np.where(np.isnan(labels), np.nan, _compare(labels, query.comparison))
        out_keys.append(keys)
        out_cutoffs.append(cut_array)
        out_labels.append(labels)

    if not out_keys:
        empty = np.empty(0)
        return LabelTable(
            task_type=binding.task_type,
            entity_table=query.entity_table,
            entity_keys=empty,
            cutoffs=empty.astype(np.int64),
            labels=empty,
            item_keys=[] if is_link else None,
        )

    keys = np.concatenate(out_keys)
    cuts = np.concatenate(out_cutoffs)
    labels = np.concatenate(out_labels)
    items = out_items if is_link else None

    # Drop rows with undefined aggregates (empty-window avg/min/max).
    defined = ~np.isnan(labels) if not is_link else np.ones(len(labels), dtype=bool)
    if not defined.all():
        keys, cuts, labels = keys[defined], cuts[defined], labels[defined]

    return LabelTable(
        task_type=binding.task_type,
        entity_table=query.entity_table,
        entity_keys=keys,
        cutoffs=cuts,
        labels=labels,
        item_keys=items,
    )


def _aggregate_labels(
    binding: QueryBinding,
    target_table: Table,
    fact_rows: np.ndarray,
    fact_groups: np.ndarray,
    num_entities: int,
) -> np.ndarray:
    target = binding.query.target
    assert isinstance(target, Aggregate)
    if target.column is None:
        return aggregate_grouped_values(target.func, fact_groups, num_entities)
    column = target_table[target.column]
    values = column.values[fact_rows].astype(np.float64)
    valid = ~column.null_mask()[fact_rows]
    return aggregate_grouped_values(
        target.func, fact_groups, num_entities, values=values, valid=valid
    )
