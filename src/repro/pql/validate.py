"""Semantic validation of PQL queries against a database schema.

Checks performed:

* entity table exists and ``entity_key`` is its primary key;
* target table exists, is temporal (labels are defined over a time
  window), and has exactly one foreign key to the entity table (that
  key links facts to entities);
* aggregate columns exist and are numeric where required;
* condition columns exist and literals match their column types;
* for LIST targets, the listed column is a foreign key (the items
  being predicted must be entities themselves).

On success returns a :class:`QueryBinding` carrying the resolved
schema objects that the labeler and planner consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.pql.ast import Aggregate, ListTarget, PredictiveQuery, TaskType
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, TableSchema
from repro.relational.types import DType

__all__ = ["PQLValidationError", "QueryBinding", "validate"]

_NUMERIC_FUNCS = {"sum", "avg", "min", "max"}


class PQLValidationError(ValueError):
    """Raised when a syntactically valid query does not fit the schema."""


@dataclass(frozen=True)
class QueryBinding:
    """A validated query plus the schema objects it resolves to.

    For ``VIA`` aggregates, ``entity_fk`` is the *via* table's foreign
    key to the entity and ``via_fk`` is the fact table's foreign key to
    the via table; otherwise ``via_schema``/``via_fk`` are ``None``.
    """

    query: PredictiveQuery
    entity_schema: TableSchema
    target_schema: TableSchema
    entity_fk: ForeignKey
    #: For LIST targets: the FK that the listed column resolves to.
    item_fk: Optional[ForeignKey]
    via_schema: Optional[TableSchema] = None
    via_fk: Optional[ForeignKey] = None

    @property
    def task_type(self) -> TaskType:
        """The task type of the bound query."""
        return self.query.task_type

    @property
    def item_table(self) -> Optional[str]:
        """For link tasks, the table the predicted items live in."""
        return self.item_fk.ref_table if self.item_fk is not None else None


def _check_conditions(schema: TableSchema, conditions, context: str) -> None:
    for condition in conditions:
        if not schema.has_column(condition.column):
            raise PQLValidationError(
                f"{context}: table {schema.name!r} has no column {condition.column!r}"
            )
        if condition.op in ("is_null", "is_not_null"):
            continue
        dtype = schema.dtype_of(condition.column)
        literal = condition.literal
        if dtype in (DType.INT64, DType.FLOAT64, DType.TIMESTAMP):
            if not isinstance(literal, (int, float)) or isinstance(literal, bool):
                raise PQLValidationError(
                    f"{context}: column {condition.column!r} is numeric but literal is {literal!r}"
                )
        elif dtype == DType.STRING:
            if not isinstance(literal, str):
                raise PQLValidationError(
                    f"{context}: column {condition.column!r} is a string but literal is {literal!r}"
                )
            if condition.op not in ("=", "!="):
                raise PQLValidationError(
                    f"{context}: string column {condition.column!r} only supports = / != "
                    f"(got {condition.op!r})"
                )
        elif dtype == DType.BOOL:
            if not isinstance(literal, bool):
                raise PQLValidationError(
                    f"{context}: column {condition.column!r} is boolean but literal is {literal!r}"
                )


def _single_fk(schema: TableSchema, ref_table: str, context: str) -> ForeignKey:
    """The unique foreign key of ``schema`` into ``ref_table``."""
    candidates = [fk for fk in schema.foreign_keys if fk.ref_table == ref_table]
    if not candidates:
        raise PQLValidationError(f"{context} has no foreign key to table {ref_table!r}")
    if len(candidates) > 1:
        raise PQLValidationError(
            f"{context} has multiple foreign keys to {ref_table!r}; PQL cannot disambiguate"
        )
    return candidates[0]


def validate(query: PredictiveQuery, db: Database) -> QueryBinding:
    """Validate ``query`` against ``db``; returns the resolved binding."""
    # --- entity side ---------------------------------------------------
    if query.entity_table not in db:
        raise PQLValidationError(f"unknown entity table {query.entity_table!r}")
    entity_schema = db[query.entity_table].schema
    if entity_schema.primary_key != query.entity_key:
        raise PQLValidationError(
            f"FOR EACH must use the primary key: {query.entity_table!r} has "
            f"primary key {entity_schema.primary_key!r}, got {query.entity_key!r}"
        )
    _check_conditions(entity_schema, query.entity_conditions, "entity filter")
    if query.entity_max_age_seconds is not None and entity_schema.time_column is None:
        raise PQLValidationError(
            f"AGE filter requires entity table {query.entity_table!r} to have a time column"
        )

    # --- target side ---------------------------------------------------
    target = query.target
    if target.table not in db:
        raise PQLValidationError(f"unknown target table {target.table!r}")
    target_schema = db[target.table].schema
    if target_schema.time_column is None:
        raise PQLValidationError(
            f"target table {target.table!r} has no time column; window aggregates "
            "need timestamped facts"
        )
    via_schema = None
    via_fk = None
    via_name = getattr(target, "via", None)
    if via_name is not None:
        if via_name not in db:
            raise PQLValidationError(f"unknown VIA table {via_name!r}")
        via_schema = db[via_name].schema
        if via_schema.primary_key is None:
            raise PQLValidationError(f"VIA table {via_name!r} needs a primary key")
        via_fk = _single_fk(target_schema, via_name, f"target table {target.table!r}")
        entity_fk = _single_fk(via_schema, query.entity_table, f"VIA table {via_name!r}")
    else:
        entity_fk = _single_fk(target_schema, query.entity_table, f"target table {target.table!r}")
    _check_conditions(target_schema, target.conditions, "target filter")

    item_fk: Optional[ForeignKey] = None
    if isinstance(target, ListTarget):
        if not target_schema.has_column(target.column):
            raise PQLValidationError(
                f"LIST column {target.table}.{target.column} does not exist"
            )
        item_fk = target_schema.foreign_key_for(target.column)
        if item_fk is None:
            raise PQLValidationError(
                f"LIST column {target.table}.{target.column} must be a foreign key "
                "(the predicted items must be entities)"
            )
    else:
        assert isinstance(target, Aggregate)
        if target.column is not None:
            if not target_schema.has_column(target.column):
                raise PQLValidationError(
                    f"aggregate column {target.table}.{target.column} does not exist"
                )
            dtype = target_schema.dtype_of(target.column)
            if target.func in _NUMERIC_FUNCS and not dtype.is_numeric:
                raise PQLValidationError(
                    f"{target.func.upper()} needs a numeric column, "
                    f"{target.table}.{target.column} is {dtype.value}"
                )
        elif target.func in _NUMERIC_FUNCS:
            raise PQLValidationError(f"{target.func.upper()} requires a column")

    return QueryBinding(
        query=query,
        entity_schema=entity_schema,
        target_schema=target_schema,
        entity_fk=entity_fk,
        item_fk=item_fk,
        via_schema=via_schema,
        via_fk=via_fk,
    )
