"""Cost-based tiered execution for predictive queries.

The planner's declarative promise — *you say what to predict, the
system picks how* — is only half-kept if every query pays for the full
GNN sample-and-infer pipeline.  This module adds the other half: a
router that, per prediction request, estimates the cost and quality of
three candidate plans and executes the cheapest one that clears a
configurable quality floor:

* **GREEN** — the :class:`~repro.serve.fallback.ActivityHeuristic`
  activity count under a linear/logistic calibration fitted on the
  training labels.  Microseconds per row (binary searches over the
  CSR), no features, no model.
* **YELLOW** — the from-scratch GBDT over auto-extracted relational
  features (:mod:`repro.baselines.trees` + ``features``), with the
  green activity signal stacked in as an extra column so the mid-tier
  is genuinely competitive.
* **RED** — the full GNN.  When the hybrid is enabled, red's binary
  output is a validation-tuned logit blend of the GNN margin
  (:meth:`~repro.gnn.trainer.NodeTaskTrainer.export_scores`) with the
  yellow score — the GBDT→GNN score stacking of "Boosting Relational
  Deep Learning with Pretrained Tabular Models".

Costs come from cheap statistics: per-tier per-row costs calibrated
at fit time (and refined online by an EMA of realized latencies),
the seed fan-out expected from the graph's CSR degree arrays, the
subgraph-cache hit likelihood read non-destructively from
:meth:`LRUSubgraphCache.snapshot`, and the model's warm/cold state.
Quality comes from per-tier validation scores recorded at fit time.
Every routed call runs under a ``router.predict`` span carrying the
chosen tier plus estimated and realized cost, so ``--profile``
(EXPLAIN ANALYZE) reports the route next to the stage tree, and the
decision is exposed to the serving layer via :attr:`last_route`.

Routing changes *which* plan runs, never what a plan computes: a
forced route (``route="red"``) is bit-identical to the auto router
choosing red, because both execute the same tier predictor.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.baselines.features import FeatureBuilder
from repro.baselines.linear import LinearRegression, LogisticRegression
from repro.baselines.trees import GradientBoostingClassifier, GradientBoostingRegressor
from repro.eval.metrics import auroc, mae
from repro.eval.splits import TemporalSplit
from repro.obs import get_logger, get_registry
from repro.obs import trace as obs_trace
from repro.pql.ast import PredictiveQuery, TaskType
from repro.pql.labeler import LabelTable, build_label_table
from repro.pql.planner import (
    PredictiveQueryPlanner,
    TrainedPredictiveModel,
)
from repro.resilience.checkpoint import atomic_write_bytes, atomic_write_json, sha256_file

__all__ = [
    "GREEN",
    "YELLOW",
    "RED",
    "TIERS",
    "RouterConfig",
    "TierEstimate",
    "RouteDecision",
    "CostModel",
    "GreenTier",
    "YellowTier",
    "RoutedPredictiveModel",
    "fit_routed",
    "estimate_fanout_work",
    "is_routed_dir",
]

_log = get_logger("pql.router")

GREEN = "green"
YELLOW = "yellow"
RED = "red"
TIERS = (GREEN, YELLOW, RED)

#: Fraction of red's per-row cost attributed to sampling (the part a
#: subgraph-cache hit skips).  Matches the warm/cold split measured by
#: bench_sampling: sampling dominates the no-grad path.
_RED_SAMPLING_FRACTION = 0.8
#: Extra rows' worth of red cost charged while the model is cold
#: (first call pays allocator warmup, lazy memos, branch-predictor
#: cold paths).
_COLD_SURCHARGE_ROWS = 8.0
#: EMA weight for realized per-row costs observed after fit.
_COST_EMA = 0.5
#: Rows of evidence at which an online observation carries half the
#: full EMA weight; small batches barely move a calibrated estimate.
_EMA_EVIDENCE_ROWS = 16


@dataclass
class RouterConfig:
    """Routing policy knobs (CLI: ``--route`` / ``--quality-floor``).

    ``route``
        ``"auto"`` picks per request; a tier name forces every request
        through that tier (useful for A/B checks and the bit-identity
        acceptance gate).
    ``quality_floor``
        A tier is eligible when its fit-time validation quality is at
        least ``quality_floor``  × the best tier's quality.  1.0 routes
        on cost only among quality-maximal tiers; 0.0 always picks the
        cheapest tier.
    ``hybrid``
        Stack the green activity signal into yellow's features and
        blend red's binary output with yellow in logit space (blend
        weight tuned on validation).
    ``max_calibration_rows``
        Cap on the validation rows used for per-tier quality scoring
        and cost timing at fit time.
    """

    route: str = "auto"
    quality_floor: float = 0.98
    hybrid: bool = True
    max_calibration_rows: int = 512

    def __post_init__(self) -> None:
        if self.route not in ("auto",) + TIERS:
            raise ValueError(f"route must be auto|green|yellow|red, got {self.route!r}")
        if not 0.0 <= self.quality_floor <= 1.0:
            raise ValueError(f"quality_floor must be in [0, 1], got {self.quality_floor}")


@dataclass
class TierEstimate:
    """One candidate plan, as the router saw it at decision time."""

    tier: str
    quality: float
    est_cost_ms: float
    eligible: bool
    reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record for EXPLAIN ANALYZE / serve responses."""
        return {
            "tier": self.tier,
            "quality": round(float(self.quality), 6),
            "est_cost_ms": round(float(self.est_cost_ms), 4),
            "eligible": bool(self.eligible),
            "reason": self.reason,
        }


@dataclass
class RouteDecision:
    """The route taken for one request, with its cost accounting."""

    tier: str
    rows: int
    est_cost_ms: float
    forced: bool
    reason: str
    estimates: List[TierEstimate] = field(default_factory=list)
    realized_cost_ms: float = float("nan")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record for EXPLAIN ANALYZE / serve responses."""
        return {
            "tier": self.tier,
            "rows": self.rows,
            "est_cost_ms": round(float(self.est_cost_ms), 4),
            "realized_cost_ms": round(float(self.realized_cost_ms), 4),
            "forced": self.forced,
            "reason": self.reason,
            "estimates": [e.to_dict() for e in self.estimates],
        }


def estimate_fanout_work(graph, entity_type: str, fanouts) -> float:
    """Expected sampled nodes per seed, from the CSR degree arrays.

    A cheap static statistic: hop 1 branches by the seed type's
    capped mean in-degree; deeper hops use the graph-wide mean
    branching factor (the frontier's type mix is unknown without
    sampling, which is exactly what we are avoiding).
    """

    def branching(node_type: str, fanout: int) -> float:
        total = 0.0
        for edge_type in graph.edge_types_into(node_type):
            store = graph._edges[edge_type]
            mean_deg = float(store.indptr[-1]) / max(1, graph.num_nodes(node_type))
            total += min(float(fanout), mean_deg)
        return total

    work, frontier = 1.0, 1.0
    fanouts = list(fanouts)
    for hop, fanout in enumerate(fanouts):
        if hop == 0:
            b = branching(entity_type, fanout)
        else:
            per_type = [branching(t, fanout) for t in graph.node_types]
            b = float(np.mean(per_type)) if per_type else 0.0
        frontier *= max(b, 1.0)
        work += frontier
    return work


class CostModel:
    """Per-tier cost estimator, seeded at fit time and refined online.

    Estimated cost is ``overhead_ms + per_row_ms * rows``: the
    calibrated fixed cost of dispatching one call into the tier plus
    the calibrated marginal cost of each prediction row (both measured
    during fit-time validation scoring).  Every routed call feeds its
    realized latency back through a rows-weighted, clamped EMA so
    estimates track the current machine — a single cold outlier (e.g.
    yellow's first call building its feature block) nudges the
    estimate instead of poisoning it, which matters because the router
    stops sending traffic to a tier it believes is expensive and an
    unvisited tier's estimate never self-corrects.  Red's estimate is
    additionally shaped by the subgraph-cache hit likelihood (hits
    skip the sampling fraction of the marginal work) and a cold-start
    surcharge.
    """

    def __init__(
        self,
        per_row_ms: Dict[str, float],
        fanout_work: float = 1.0,
        overhead_ms: Optional[Dict[str, float]] = None,
    ) -> None:
        self._per_row_ms = {t: float(c) for t, c in per_row_ms.items()}
        self._overhead_ms = {t: float(c) for t, c in (overhead_ms or {}).items()}
        self.fanout_work = float(fanout_work)
        self._lock = threading.Lock()

    def per_row_ms(self) -> Dict[str, float]:
        """Current per-tier marginal cost estimates (ms per row)."""
        with self._lock:
            return dict(self._per_row_ms)

    def overhead_ms(self) -> Dict[str, float]:
        """Per-tier fixed call overheads (ms), calibrated at fit time."""
        with self._lock:
            return dict(self._overhead_ms)

    def estimate(
        self, tier: str, rows: int, cache_hit_rate: float = 0.0, warm: bool = True
    ) -> float:
        """Estimated cost in milliseconds for ``rows`` predictions."""
        with self._lock:
            per_row = self._per_row_ms.get(tier, 1.0)
            overhead = self._overhead_ms.get(tier, 0.0)
        marginal = per_row * max(int(rows), 1)
        if tier == RED:
            marginal *= 1.0 - _RED_SAMPLING_FRACTION * float(np.clip(cache_hit_rate, 0.0, 1.0))
            if not warm:
                marginal += per_row * _COLD_SURCHARGE_ROWS
        return overhead + marginal

    def observe(self, tier: str, rows: int, elapsed_ms: float) -> None:
        """Fold one realized latency into the tier's per-row EMA.

        The observation is the marginal cost implied by this call
        (elapsed minus the tier's fixed overhead, per row), weighted by
        how many rows backed it — a 1-row call barely moves a per-row
        estimate calibrated on hundreds — and clamped to at most a 2x
        move per update in either direction.
        """
        if rows <= 0 or not np.isfinite(elapsed_ms):
            return
        with self._lock:
            overhead = self._overhead_ms.get(tier, 0.0)
            realized = max(float(elapsed_ms) - overhead, 0.0) / rows
            prior = self._per_row_ms.get(tier)
            if prior is None:
                self._per_row_ms[tier] = realized
                return
            alpha = _COST_EMA * rows / (rows + _EMA_EVIDENCE_ROWS)
            updated = (1 - alpha) * prior + alpha * realized
            self._per_row_ms[tier] = float(np.clip(updated, prior * 0.5, prior * 2.0))


class GreenTier:
    """Linear/logistic calibration over the time-valid activity count.

    Picklable: holds fitted coefficients and names only; the graph is
    re-attached with :meth:`bind` after load (mirroring how fallback
    models take the database back at predict time).
    """

    kind = GREEN

    def __init__(self, entity_table: str, task: str, item_table: str = "") -> None:
        self.entity_table = entity_table
        self.task = task  # "binary" | "regression" | "link"
        self.item_table = item_table  # set for LIST queries (popularity ranking)
        self.calibrator = None  # LogisticRegression | LinearRegression | None
        self.constant: float = 0.0
        self._heuristic = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_heuristic"] = None
        return state

    def bind(self, graph) -> "GreenTier":
        """Attach the activity heuristic for ``graph`` (not pickled)."""
        from repro.serve.fallback import ActivityHeuristic  # lazy: avoids a pql↔serve import cycle

        self._heuristic = ActivityHeuristic(graph, self.entity_table, item_type=self.item_table)
        return self

    def activity(self, entity_keys: np.ndarray, cutoffs: np.ndarray) -> np.ndarray:
        """Raw time-valid fact counts (the shared green/yellow signal)."""
        if self._heuristic is None:
            raise RuntimeError("GreenTier is unbound; call bind(graph) first")
        return self._heuristic.predict(entity_keys, cutoffs, task="regression")

    def fit(self, entity_keys: np.ndarray, cutoffs: np.ndarray, labels: np.ndarray) -> "GreenTier":
        """Calibrate log-activity against the labels (linear/logistic)."""
        x = np.log1p(self.activity(entity_keys, cutoffs))[:, None]
        y = np.asarray(labels, dtype=np.float64)
        if self.task == "binary":
            if 0.0 < y.mean() < 1.0:
                self.calibrator = LogisticRegression().fit(x, y)
            else:  # degenerate training window: fall back to the base rate
                self.calibrator = None
                self.constant = float(y.mean()) if len(y) else 0.0
        else:
            self.calibrator = LinearRegression().fit(x, y)
        return self

    def predict(self, entity_keys: np.ndarray, cutoffs: np.ndarray) -> np.ndarray:
        """Calibrated scores from activity alone (the cheapest plan)."""
        x = np.log1p(self.activity(entity_keys, cutoffs))[:, None]
        if self.calibrator is None:
            return np.full(len(x), self.constant, dtype=np.float64)
        if self.task == "binary":
            return np.asarray(self.calibrator.predict_proba(x), dtype=np.float64)
        return np.asarray(self.calibrator.predict(x), dtype=np.float64)


class YellowTier:
    """GBDT over auto-extracted features, green signal stacked in.

    Feature blocks are built once per distinct cutoff and memoized
    (serving traffic clusters on few cutoffs), so a warm yellow call is
    a row gather plus tree traversal — orders of magnitude under the
    GNN's sample-and-infer.  Picklable: :meth:`bind` re-attaches the
    database, feature builder, and green tier after load.
    """

    kind = YELLOW
    #: Bound on memoized per-cutoff feature blocks.
    MAX_BLOCKS = 8

    def __init__(self, entity_table: str, task: str, hybrid: bool) -> None:
        self.entity_table = entity_table
        self.task = task
        self.hybrid = hybrid
        self.estimator = None
        self._db = None
        self._green: Optional[GreenTier] = None
        self._builder: Optional[FeatureBuilder] = None
        self._blocks: Dict[int, np.ndarray] = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_db"] = None
        state["_green"] = None
        state["_builder"] = None
        state["_blocks"] = {}
        return state

    def bind(self, db, green: Optional[GreenTier]) -> "YellowTier":
        """Attach the database, green tier, and feature builder (not pickled)."""
        self._db = db
        self._green = green
        self._builder = FeatureBuilder(db, self.entity_table, include_two_hop=False)
        self._blocks = {}
        return self

    def _block(self, cutoff: int) -> np.ndarray:
        cached = self._blocks.get(cutoff)
        if cached is None:
            if len(self._blocks) >= self.MAX_BLOCKS:
                self._blocks.clear()
            cached = self._builder._build_at_cutoff(int(cutoff))
            self._blocks[cutoff] = cached
        return cached

    def features(self, entity_keys: np.ndarray, cutoffs: np.ndarray) -> np.ndarray:
        """Auto-extracted features (+ stacked green activity) per row."""
        if self._builder is None:
            raise RuntimeError("YellowTier is unbound; call bind(db, green) first")
        entity_keys = np.asarray(entity_keys)
        cutoffs = np.asarray(cutoffs, dtype=np.int64)
        out = np.full((len(entity_keys), self._builder.num_features), np.nan)
        slots = np.fromiter(
            (self._builder._key_to_slot[key] for key in entity_keys.tolist()),
            dtype=np.int64,
            count=len(entity_keys),
        )
        for cutoff in np.unique(cutoffs):
            rows = np.flatnonzero(cutoffs == cutoff)
            out[rows] = self._block(int(cutoff))[slots[rows]]
        if self.hybrid and self._green is not None:
            stacked = np.log1p(self._green.activity(entity_keys, cutoffs))[:, None]
            out = np.hstack([out, stacked])
        return out

    def fit(
        self,
        train_keys: np.ndarray,
        train_cutoffs: np.ndarray,
        train_labels: np.ndarray,
        val_keys: np.ndarray,
        val_cutoffs: np.ndarray,
        val_labels: np.ndarray,
    ) -> "YellowTier":
        """Fit the GBDT on auto features with validation early stopping."""
        x_train = self.features(train_keys, train_cutoffs)
        eval_set = None
        if len(val_keys):
            eval_set = (self.features(val_keys, val_cutoffs), val_labels)
        if self.task == "binary":
            self.estimator = GradientBoostingClassifier(
                num_rounds=100, learning_rate=0.1, max_depth=4
            )
        else:
            self.estimator = GradientBoostingRegressor(
                num_rounds=100, learning_rate=0.1, max_depth=4
            )
        self.estimator.fit(x_train, train_labels, eval_set=eval_set)
        return self

    def predict(self, entity_keys: np.ndarray, cutoffs: np.ndarray) -> np.ndarray:
        """GBDT scores on the auto-extracted feature rows."""
        features = self.features(entity_keys, cutoffs)
        if self.task == "binary":
            return np.asarray(self.estimator.predict_proba(features), dtype=np.float64)
        return np.asarray(self.estimator.predict(features), dtype=np.float64)


def _quality(task: str, labels: np.ndarray, predictions: np.ndarray) -> float:
    """One comparable quality number per tier.

    Binary → AUROC; regression → ``1 / (1 + MAE/σ)`` (unit-free, in
    (0, 1], higher is better) so the floor semantics match across task
    types.  Degenerate validation sets score 0.5 — the router then
    treats every tier as interchangeable and picks on cost alone,
    which is the only defensible call without a usable signal.
    """
    labels = np.asarray(labels, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if len(labels) == 0:
        return 0.5
    if task == "binary":
        score = auroc(labels, predictions)
        return float(score) if np.isfinite(score) else 0.5
    scale = float(labels.std())
    if not np.isfinite(scale) or scale <= 0:
        return 0.5
    return float(1.0 / (1.0 + mae(labels, predictions) / scale))


def _logit(p: np.ndarray) -> np.ndarray:
    clipped = np.clip(p, 1e-7, 1 - 1e-7)
    return np.log(clipped / (1 - clipped))


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


class RoutedPredictiveModel:
    """A fitted predictive query with tiered execution.

    Wraps the planner's :class:`TrainedPredictiveModel` (red) plus the
    cheaper tiers fitted against the same labels, the per-tier
    validation qualities, and the calibrated :class:`CostModel`.  The
    surface mirrors ``TrainedPredictiveModel`` (``predict``,
    ``rank_items``, ``evaluate``, ``save``/``load``, ``binding``,
    ``graph``, ...) so the serving stack and CLI treat both
    interchangeably; ``predict``/``rank_items`` additionally accept
    ``route=`` to force a tier for one call.
    """

    ROUTING_FILE = "routing.json"
    TIERS_FILE = "tiers.pkl"
    RED_DIR = "red"

    def __init__(
        self,
        red: TrainedPredictiveModel,
        green: Optional[GreenTier],
        yellow: Optional[YellowTier],
        quality: Dict[str, float],
        cost: CostModel,
        router: RouterConfig,
        blend_alpha: float = 1.0,
    ) -> None:
        self.red = red
        self.green = green
        self.yellow = yellow
        self.quality = dict(quality)
        self.cost = cost
        self.router = router
        #: Logit-blend weight on the GNN margin for red's binary output
        #: (1.0 = pure GNN; tuned on validation when hybrid is on).
        self.blend_alpha = float(blend_alpha)
        #: Decision record of the most recent routed call.
        self.last_route: Optional[RouteDecision] = None
        self._red_calls = 0
        self._lock = threading.Lock()

    # -- TrainedPredictiveModel surface --------------------------------
    @property
    def db(self):
        return self.red.db

    @property
    def binding(self):
        return self.red.binding

    @property
    def graph(self):
        return self.red.graph

    @property
    def config(self):
        return self.red.config

    @property
    def task_type(self) -> TaskType:
        return self.red.task_type

    @property
    def degraded_from(self):
        return self.red.degraded_from

    @property
    def degraded_reason(self):
        return self.red.degraded_reason

    @property
    def baseline(self):
        return self.red.baseline

    @property
    def node_trainer(self):
        return self.red.node_trainer

    @property
    def link_trainer(self):
        return self.red.link_trainer

    def sampler_cache_stats(self):
        """Windowed subgraph-cache stats of the red model (may be reset)."""
        return self.red.sampler_cache_stats()

    def sampler_cache_snapshot(self):
        """Monotonic lifetime subgraph-cache counters (non-destructive)."""
        return self.red.sampler_cache_snapshot()

    # -- routing -------------------------------------------------------
    def available_tiers(self) -> List[str]:
        """Fitted tiers, cheapest first; red is always present."""
        tiers = []
        if self.green is not None:
            tiers.append(GREEN)
        if self.yellow is not None:
            tiers.append(YELLOW)
        tiers.append(RED)
        return tiers

    def _cache_hit_rate(self) -> float:
        snapshot = self.red.sampler_cache_snapshot()
        if not snapshot:
            return 0.0
        total = snapshot["hits"] + snapshot["misses"]
        return snapshot["hits"] / total if total else 0.0

    def decide(self, rows: int, route: Optional[str] = None) -> RouteDecision:
        """Pick the tier for a request of ``rows`` predictions.

        ``route`` (or ``RouterConfig.route``) other than ``"auto"``
        forces the tier; estimates are still computed so forced runs
        report the same cost accounting as auto runs.
        """
        forced = route if route is not None else self.router.route
        if forced not in ("auto",) + TIERS:
            raise ValueError(f"route must be auto|green|yellow|red, got {forced!r}")
        available = self.available_tiers()
        with self._lock:
            warm = self._red_calls > 0
        hit_rate = self._cache_hit_rate()
        best = max(self.quality.get(t, 0.0) for t in available)
        floor = self.router.quality_floor * best
        estimates = []
        for tier in TIERS:
            if tier not in available:
                estimates.append(TierEstimate(tier, 0.0, float("inf"), False, "unavailable"))
                continue
            q = self.quality.get(tier, 0.0)
            est = self.cost.estimate(tier, rows, cache_hit_rate=hit_rate, warm=warm)
            eligible = q >= floor
            estimates.append(
                TierEstimate(tier, q, est, eligible, "" if eligible else "below quality floor")
            )
        if forced != "auto":
            if forced not in available:
                raise ValueError(f"route {forced!r} unavailable; tiers: {available}")
            chosen, reason = forced, "forced"
        else:
            eligible = [e for e in estimates if e.eligible]
            pick = min(eligible, key=lambda e: e.est_cost_ms)
            chosen = pick.tier
            reason = (
                f"cheapest of {len(eligible)} tiers with quality >= "
                f"{floor:.4f} ({self.router.quality_floor:.2f} x best {best:.4f})"
            )
        return RouteDecision(
            tier=chosen,
            rows=int(rows),
            est_cost_ms=next(e.est_cost_ms for e in estimates if e.tier == chosen),
            forced=forced != "auto",
            reason=reason,
            estimates=estimates,
        )

    def _tier_predict(self, tier: str, entity_keys: np.ndarray, cutoffs: np.ndarray) -> np.ndarray:
        if tier == GREEN:
            return self.green.predict(entity_keys, cutoffs)
        if tier == YELLOW:
            return self.yellow.predict(entity_keys, cutoffs)
        return self._red_predict(entity_keys, cutoffs)

    def _red_predict(self, entity_keys: np.ndarray, cutoffs: np.ndarray) -> np.ndarray:
        blend = (
            self.router.hybrid
            and self.blend_alpha < 1.0
            and self.yellow is not None
            and self.red.node_trainer is not None
        )
        if not blend:
            return self.red.predict(entity_keys, cutoffs)
        from repro.graph.builder import node_index_for_keys

        entity_type = self.binding.query.entity_table
        ids = node_index_for_keys(self.graph, entity_type, np.asarray(entity_keys))
        if self.task_type == TaskType.BINARY:
            gnn_logits = self.red.node_trainer.export_scores(entity_type, ids, cutoffs)
            yellow_logits = _logit(self.yellow.predict(entity_keys, cutoffs))
            return _sigmoid(self.blend_alpha * gnn_logits + (1 - self.blend_alpha) * yellow_logits)
        gnn = self.red.predict(entity_keys, cutoffs)
        return self.blend_alpha * gnn + (1 - self.blend_alpha) * self.yellow.predict(
            entity_keys, cutoffs
        )

    def predict(self, entity_keys: np.ndarray, cutoff, route: Optional[str] = None) -> np.ndarray:
        """Routed predictions (node tasks); see :meth:`decide`."""
        if self.task_type == TaskType.LINK:
            raise RuntimeError("predict() is for node tasks; use rank_items() for LIST queries")
        entity_keys = np.asarray(entity_keys)
        cutoffs = TrainedPredictiveModel._resolve_cutoffs(cutoff, len(entity_keys))
        decision = self.decide(len(entity_keys), route)
        with obs_trace.span("router.predict") as route_span:
            route_span.add_counter(f"router.route.{decision.tier}")
            route_span.add_counter("router.rows", len(entity_keys))
            route_span.add_counter("router.est_cost_us", int(decision.est_cost_ms * 1000))
            start = time.perf_counter()
            out = self._tier_predict(decision.tier, entity_keys, cutoffs)
            decision.realized_cost_ms = (time.perf_counter() - start) * 1000.0
            route_span.add_counter(
                "router.realized_cost_us", int(decision.realized_cost_ms * 1000)
            )
        self._account(decision)
        return out

    def rank_items(
        self, entity_keys: np.ndarray, cutoff, k: int = 10, route: Optional[str] = None
    ):
        """Routed top-``k`` rankings (link tasks); green = popularity."""
        if self.task_type != TaskType.LINK:
            raise RuntimeError("rank_items() is only available for LIST queries")
        entity_keys = np.asarray(entity_keys)
        cutoffs = TrainedPredictiveModel._resolve_cutoffs(cutoff, len(entity_keys))
        decision = self.decide(len(entity_keys), route)
        with obs_trace.span("router.rank") as route_span:
            route_span.add_counter(f"router.route.{decision.tier}")
            route_span.add_counter("router.rows", len(entity_keys))
            route_span.add_counter("router.est_cost_us", int(decision.est_cost_ms * 1000))
            start = time.perf_counter()
            if decision.tier == GREEN:
                out = self.green._heuristic.rank(entity_keys, cutoffs, k)
            else:
                out = self.red.rank_items(entity_keys, cutoffs, k)
            decision.realized_cost_ms = (time.perf_counter() - start) * 1000.0
            route_span.add_counter(
                "router.realized_cost_us", int(decision.realized_cost_ms * 1000)
            )
        self._account(decision)
        return out

    def _account(self, decision: RouteDecision) -> None:
        get_registry().counter(f"router.route.{decision.tier}").inc()
        self.cost.observe(decision.tier, decision.rows, decision.realized_cost_ms)
        with self._lock:
            if decision.tier == RED:
                self._red_calls += 1
            self.last_route = decision

    # -- evaluation ----------------------------------------------------
    def evaluate(self, cutoff: int, k: int = 10, route: Optional[str] = None) -> Dict[str, float]:
        """Metrics at ``cutoff`` with routed (or forced) predictions."""
        if self.task_type == TaskType.LINK:
            return self.red.evaluate(cutoff, k)
        labels = build_label_table(self.db, self.binding, [int(cutoff)])
        predictions = self.predict(labels.entity_keys, int(cutoff), route=route)
        from repro.eval.metrics import (
            accuracy,
            average_precision,
            brier_score,
            expected_calibration_error,
            f1_score,
            r2_score,
            rmse,
        )

        if self.task_type == TaskType.BINARY:
            return {
                "auroc": auroc(labels.labels, predictions),
                "average_precision": average_precision(labels.labels, predictions),
                "accuracy": accuracy(labels.labels, (predictions > 0.5).astype(float)),
                "f1": f1_score(labels.labels, (predictions > 0.5).astype(float)),
                "brier": brier_score(labels.labels, predictions),
                "ece": expected_calibration_error(labels.labels, predictions),
                "num_examples": float(len(labels)),
                "positive_rate": labels.positive_rate,
            }
        return {
            "mae": mae(labels.labels, predictions),
            "rmse": rmse(labels.labels, predictions),
            "r2": r2_score(labels.labels, predictions),
            "num_examples": float(len(labels)),
        }

    # -- persistence ---------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist atomically: ``red/`` (the GNN model), ``tiers.pkl``
        (green/yellow, database-free), ``routing.json`` (policy,
        qualities, calibrated costs, checksums)."""
        staging = directory.rstrip(os.sep) + ".tmp"
        if os.path.exists(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)
        self.red.save(os.path.join(staging, self.RED_DIR))
        tiers_path = os.path.join(staging, self.TIERS_FILE)
        atomic_write_bytes(tiers_path, pickle.dumps({"green": self.green, "yellow": self.yellow}))
        manifest = {
            "router": asdict(self.router),
            "quality": {t: float(q) for t, q in self.quality.items()},
            "per_row_ms": self.cost.per_row_ms(),
            "overhead_ms": self.cost.overhead_ms(),
            "fanout_work": self.cost.fanout_work,
            "blend_alpha": self.blend_alpha,
            "tiers_sha256": sha256_file(tiers_path),
        }
        atomic_write_json(os.path.join(staging, self.ROUTING_FILE), manifest)
        backup = directory.rstrip(os.sep) + ".old"
        if os.path.exists(backup):
            shutil.rmtree(backup)
        if os.path.exists(directory):
            os.rename(directory, backup)
        os.rename(staging, directory)
        if os.path.exists(backup):
            shutil.rmtree(backup)

    @classmethod
    def load(cls, directory: str, db) -> "RoutedPredictiveModel":
        """Reload against a database, rebinding the cheap tiers."""
        with open(os.path.join(directory, cls.ROUTING_FILE)) as fh:
            manifest = json.load(fh)
        red = TrainedPredictiveModel.load(os.path.join(directory, cls.RED_DIR), db)
        with open(os.path.join(directory, cls.TIERS_FILE), "rb") as fh:
            tiers = pickle.loads(fh.read())
        green: Optional[GreenTier] = tiers.get("green")
        yellow: Optional[YellowTier] = tiers.get("yellow")
        if green is not None:
            green.bind(red.graph)
        if yellow is not None:
            yellow.bind(db, green)
        router = RouterConfig(**manifest["router"])
        cost = CostModel(
            manifest["per_row_ms"],
            fanout_work=manifest.get("fanout_work", 1.0),
            overhead_ms=manifest.get("overhead_ms"),
        )
        return cls(
            red=red,
            green=green,
            yellow=yellow,
            quality=manifest["quality"],
            cost=cost,
            router=router,
            blend_alpha=manifest.get("blend_alpha", 1.0),
        )


def is_routed_dir(directory: str) -> bool:
    """Whether ``directory`` holds a saved :class:`RoutedPredictiveModel`."""
    return os.path.exists(os.path.join(directory, RoutedPredictiveModel.ROUTING_FILE))


def _cap_labels(labels: LabelTable, cap: int, seed: int) -> LabelTable:
    if cap <= 0 or len(labels) <= cap:
        return labels
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(labels), size=cap, replace=False)
    return labels.subset(np.sort(picks))


def _tune_blend_alpha(
    red: TrainedPredictiveModel,
    yellow: YellowTier,
    val: LabelTable,
    task: str,
) -> float:
    """Grid-search the GBDT→GNN stacking weight on validation."""
    from repro.graph.builder import node_index_for_keys

    entity_type = red.binding.query.entity_table
    ids = node_index_for_keys(red.graph, entity_type, val.entity_keys)
    yellow_pred = yellow.predict(val.entity_keys, val.cutoffs)
    if task == "binary":
        gnn_scores = red.node_trainer.export_scores(entity_type, ids, val.cutoffs)
        yellow_scores = _logit(yellow_pred)

        def blended(alpha: float) -> np.ndarray:
            return _sigmoid(alpha * gnn_scores + (1 - alpha) * yellow_scores)

    else:
        gnn_pred = red.predict(val.entity_keys, val.cutoffs)

        def blended(alpha: float) -> np.ndarray:
            return alpha * gnn_pred + (1 - alpha) * yellow_pred

    # The grid floor keeps red a genuine GNN plan: alpha=0 would turn
    # the red tier into a copy of yellow, rigging any routed-vs-all-GNN
    # comparison.  Yellow is already the pure-GBDT plan.
    best_alpha, best_quality = 1.0, -np.inf
    for alpha in (0.25, 0.5, 0.75, 1.0):
        quality = _quality(task, val.labels, blended(alpha))
        # Strict > keeps the highest alpha on ties, biasing toward the
        # GNN (the paper's model) when the blend is a wash.
        if quality > best_quality:
            best_alpha, best_quality = alpha, quality
    return best_alpha


def _fit_link_tiers(
    red: TrainedPredictiveModel, val: LabelTable, router: RouterConfig, seed: int
) -> Tuple[Optional[GreenTier], Dict[str, float], Dict[str, float]]:
    """Green popularity tier + qualities/costs for LIST queries."""
    entity_table = red.binding.query.entity_table
    green = GreenTier(entity_table, "link", item_table=red.binding.item_table).bind(red.graph)
    keep = [i for i, items in enumerate(val.item_keys or []) if len(items) > 0]
    if not keep:
        return green, {GREEN: 0.5, RED: 0.5}, {GREEN: 0.05, RED: 5.0}
    subset = _cap_labels(val.subset(np.asarray(keep)), min(router.max_calibration_rows, 64), seed)

    def hit_rate(rank_fn) -> Tuple[float, float]:
        start = time.perf_counter()
        ranked = rank_fn(subset.entity_keys, subset.cutoffs, 10)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        hits = 0
        for (item_keys, _), relevant in zip(ranked, subset.item_keys):
            if np.isin(item_keys, np.asarray(relevant)).any():
                hits += 1
        return hits / len(ranked), elapsed_ms / len(ranked)

    green_q, green_ms = hit_rate(lambda k, c, n: green._heuristic.rank(k, c, n))
    red_q, red_ms = hit_rate(lambda k, c, n: red.rank_items(k, c, n))
    quality = {GREEN: green_q, RED: red_q}
    per_row_ms = {GREEN: max(green_ms, 1e-4), RED: max(red_ms, 1e-4)}
    return green, quality, per_row_ms


def fit_routed(
    planner: PredictiveQueryPlanner,
    query: Union[str, PredictiveQuery],
    split: TemporalSplit,
    router: Optional[RouterConfig] = None,
) -> RoutedPredictiveModel:
    """Fit the full tier ladder for one predictive query.

    Red is the planner's normal :meth:`~PredictiveQueryPlanner.fit`
    (plan cache, resilience, degradation ladder all apply); green and
    yellow are fitted against the same label tables; per-tier
    validation quality and per-row cost are measured on a capped
    validation sample and recorded as the router's calibration.
    """
    router = router or RouterConfig()
    red = planner.fit(query, split)
    binding = red.binding
    seed = planner.config.seed
    with obs_trace.span("router.fit") as fit_span:
        if binding.task_type == TaskType.LINK:
            val = build_label_table(planner.db, binding, [split.val_cutoff])
            green, quality, per_row_ms = _fit_link_tiers(red, val, router, seed)
            fanout = estimate_fanout_work(
                red.graph, binding.query.entity_table, planner.config.fanouts or [8] * planner.config.num_layers
            )
            model = RoutedPredictiveModel(
                red=red,
                green=green,
                yellow=None,
                quality=quality,
                cost=CostModel(per_row_ms, fanout_work=fanout),
                router=router,
            )
            fit_span.add_counter("router.tiers", len(model.available_tiers()))
            return model

        task = "binary" if binding.task_type == TaskType.BINARY else "regression"
        entity_table = binding.query.entity_table
        train = planner._maybe_subsample(
            build_label_table(planner.db, binding, split.train_cutoffs)
        )
        val = build_label_table(planner.db, binding, [split.val_cutoff])
        cal = _cap_labels(val, router.max_calibration_rows, seed + 11)

        with obs_trace.span("router.fit_green"):
            green = GreenTier(entity_table, task).bind(red.graph)
            green.fit(train.entity_keys, train.cutoffs, train.labels)
        with obs_trace.span("router.fit_yellow"):
            yellow = YellowTier(entity_table, task, hybrid=router.hybrid).bind(planner.db, green)
            yellow.fit(
                train.entity_keys, train.cutoffs, train.labels,
                val.entity_keys, val.cutoffs, val.labels,
            )

        blend_alpha = 1.0
        if router.hybrid and red.node_trainer is not None and len(cal):
            blend_alpha = _tune_blend_alpha(red, yellow, cal, task)

        model = RoutedPredictiveModel(
            red=red,
            green=green,
            yellow=yellow,
            quality={},
            cost=CostModel({GREEN: 0.01, YELLOW: 0.1, RED: 1.0}),
            router=router,
        )
        model.blend_alpha = blend_alpha

        # Calibrate: score the validation sample through each tier,
        # measuring quality and per-row cost with the same clock the
        # router will use at serve time; then one warm single-row call
        # per tier to split off the fixed dispatch overhead (bulk
        # scoring amortizes it away, small serve batches do not).
        quality: Dict[str, float] = {}
        per_row_ms: Dict[str, float] = {}
        overhead_ms: Dict[str, float] = {}
        with obs_trace.span("router.calibrate") as cal_span:
            for tier in model.available_tiers():
                start = time.perf_counter()
                preds = model._tier_predict(tier, cal.entity_keys, cal.cutoffs)
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                quality[tier] = _quality(task, cal.labels, preds)
                per_row_ms[tier] = max(elapsed_ms / max(len(cal), 1), 1e-4)
                start = time.perf_counter()
                model._tier_predict(tier, cal.entity_keys[:1], cal.cutoffs[:1])
                single_ms = (time.perf_counter() - start) * 1000.0
                overhead_ms[tier] = max(single_ms - per_row_ms[tier], 0.0)
                cal_span.add_counter(f"router.quality_bp.{tier}", int(quality[tier] * 10000))
            cal_span.add_counter("router.calibration_rows", len(cal))
        fanout = estimate_fanout_work(
            red.graph, entity_table, planner.config.fanouts or [8] * planner.config.num_layers
        )
        model.quality = quality
        model.cost = CostModel(per_row_ms, fanout_work=fanout, overhead_ms=overhead_ms)
        fit_span.add_counter("router.tiers", len(model.available_tiers()))
        _log.info(
            "router calibrated",
            extra={
                "quality": {t: round(q, 4) for t, q in quality.items()},
                "per_row_ms": {t: round(c, 4) for t, c in per_row_ms.items()},
                "blend_alpha": blend_alpha,
            },
        )
    return model
