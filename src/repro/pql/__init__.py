"""PQL — the Predictive Query Language.

The paper's thesis is that ML over a relational database should be
*declarative*: the analyst states **what** to predict; the system
compiles labels, graph, model, and training loop.  PQL is that surface:

.. code-block:: sql

    PREDICT COUNT(orders) > 0
    FOR EACH customers.id
    ASSUMING HORIZON 30 DAYS

    PREDICT SUM(orders.amount WHERE orders.amount > 10)
    FOR EACH customers.id
    ASSUMING HORIZON 90 DAYS

    PREDICT LIST(orders.product_id)
    FOR EACH customers.id
    ASSUMING HORIZON 7 DAYS

* a comparison target (``> 0``) makes the task **binary
  classification**;
* a bare aggregate makes it **regression**;
* ``LIST(child.fk)`` makes it **link prediction** (which related
  entities will appear in the window).

Modules: :mod:`repro.pql.tokens` (lexer), :mod:`repro.pql.ast`,
:mod:`repro.pql.parser`, :mod:`repro.pql.validate` (schema checking +
task typing), :mod:`repro.pql.labeler` (window-aggregate label
computation over DB snapshots), and :mod:`repro.pql.planner` (the
query → trained-model compiler).
"""

from repro.pql.ast import (
    Aggregate,
    Comparison,
    Condition,
    ListTarget,
    PredictiveQuery,
    TaskType,
)
from repro.pql.parser import PQLSyntaxError, parse
from repro.pql.validate import PQLValidationError, validate
from repro.pql.labeler import LabelTable, build_label_table
from repro.pql.planner import PlannerConfig, PredictiveQueryPlanner, TrainedPredictiveModel
from repro.pql.explain import explain_relations
from repro.pql.router import (
    RoutedPredictiveModel,
    RouteDecision,
    RouterConfig,
    fit_routed,
    is_routed_dir,
)
from repro.pql.tuning import TuneResult, tune

__all__ = [
    "Aggregate",
    "Comparison",
    "Condition",
    "ListTarget",
    "PredictiveQuery",
    "TaskType",
    "parse",
    "PQLSyntaxError",
    "validate",
    "PQLValidationError",
    "LabelTable",
    "build_label_table",
    "PlannerConfig",
    "PredictiveQueryPlanner",
    "TrainedPredictiveModel",
    "explain_relations",
    "RouterConfig",
    "RouteDecision",
    "RoutedPredictiveModel",
    "fit_routed",
    "is_routed_dir",
    "tune",
    "TuneResult",
]
