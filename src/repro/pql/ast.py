"""Abstract syntax tree for PQL queries."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "TaskType",
    "Condition",
    "Aggregate",
    "ListTarget",
    "Comparison",
    "PredictiveQuery",
]


class TaskType(enum.Enum):
    """The ML task a query compiles to."""

    BINARY = "binary"
    REGRESSION = "regression"
    LINK = "link"


@dataclass(frozen=True)
class Condition:
    """One predicate ``column op literal`` (conditions AND together).

    ``op`` is one of ``> >= < <= = !=`` plus the pseudo-ops
    ``is_null`` / ``is_not_null`` (literal ignored).
    """

    column: str
    op: str
    literal: Union[int, float, str, bool, None]

    def __str__(self) -> str:
        if self.op == "is_null":
            return f"{self.column} IS NULL"
        if self.op == "is_not_null":
            return f"{self.column} IS NOT NULL"
        literal = f"'{self.literal}'" if isinstance(self.literal, str) else self.literal
        return f"{self.column} {self.op} {literal}"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over a fact table's rows inside the horizon window.

    ``func`` ∈ {count, sum, avg, min, max, exists, count_distinct};
    ``column`` may be ``None`` for count/exists.  ``via`` names an
    intermediate table when the facts are two foreign-key hops from
    the entity (``COUNT(votes VIA posts)`` for each user: votes whose
    post belongs to the user).
    """

    func: str
    table: str
    column: Optional[str] = None
    conditions: tuple = ()
    via: Optional[str] = None

    def __str__(self) -> str:
        target = self.table if self.column is None else f"{self.table}.{self.column}"
        if self.via is not None:
            target = f"{target} VIA {self.via}"
        where = ""
        if self.conditions:
            where = " WHERE " + " AND ".join(str(c) for c in self.conditions)
        return f"{self.func.upper()}({target}{where})"


@dataclass(frozen=True)
class ListTarget:
    """Link-prediction target: the set of ``table.column`` foreign-key
    values that appear in the horizon window."""

    table: str
    column: str
    conditions: tuple = ()

    def __str__(self) -> str:
        where = ""
        if self.conditions:
            where = " WHERE " + " AND ".join(str(c) for c in self.conditions)
        return f"LIST({self.table}.{self.column}{where})"


@dataclass(frozen=True)
class Comparison:
    """Threshold turning an aggregate into a binary label."""

    op: str
    value: Union[int, float]

    def __str__(self) -> str:
        return f"{self.op} {self.value}"


@dataclass(frozen=True)
class PredictiveQuery:
    """A parsed PQL query.

    Attributes
    ----------
    target:
        The :class:`Aggregate` or :class:`ListTarget`.
    comparison:
        Present only for binary classification.
    entity_table, entity_key:
        The ``FOR EACH table.column`` clause.
    entity_conditions:
        Static filter on which entities receive predictions.
    horizon_seconds:
        Length of the label window after the cutoff.
    """

    target: Union[Aggregate, ListTarget]
    comparison: Optional[Comparison]
    entity_table: str
    entity_key: str
    entity_conditions: tuple
    horizon_seconds: int
    #: ``WHERE AGE < n DAYS`` — only entities created within the last
    #: ``n`` days before the cutoff are eligible (requires the entity
    #: table to be temporal).  ``None`` = no recency restriction.
    entity_max_age_seconds: Optional[int] = None

    @property
    def task_type(self) -> TaskType:
        """Classify the query into binary / regression / link."""
        if isinstance(self.target, ListTarget):
            return TaskType.LINK
        if self.comparison is not None:
            return TaskType.BINARY
        return TaskType.REGRESSION

    def __str__(self) -> str:
        parts = [f"PREDICT {self.target}"]
        if self.comparison is not None:
            parts.append(str(self.comparison))
        parts.append(f"FOR EACH {self.entity_table}.{self.entity_key}")
        filters = [str(c) for c in self.entity_conditions]
        if self.entity_max_age_seconds is not None:
            age_days = self.entity_max_age_seconds / 86400
            if age_days == int(age_days):
                filters.append(f"AGE < {int(age_days)} DAYS")
            else:
                filters.append(f"AGE < {self.entity_max_age_seconds // 3600} HOURS")
        if filters:
            parts.append("WHERE " + " AND ".join(filters))
        days, rem = divmod(self.horizon_seconds, 86400)
        if rem == 0 and days > 0:
            parts.append(f"ASSUMING HORIZON {days} DAYS")
        else:
            parts.append(f"ASSUMING HORIZON {self.horizon_seconds // 3600} HOURS")
        return " ".join(parts)
