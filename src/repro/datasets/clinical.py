"""Clinical dataset: patients, visits, diagnoses, prescriptions.

Generative process:

* patients have an age-correlated latent frailty;
* a subset of patients carries a *chronic condition*; chronic patients
  visit much more often, and each of their visits records one of the
  chronic diagnosis codes with high probability;
* visit severity = frailty + chronic bump + noise; severe visits lead
  to more prescriptions;
* future readmission (a visit within 60 days) is driven mostly by the
  chronic flag — which is **never stored on the patient row**.  It is
  only observable via diagnosis codes attached to past visits, i.e. a
  two-hop path (patient → visits → diagnoses).

The within-table features (age, sex) carry a weak signal, so tabular
baselines without the two-hop diagnosis aggregates land well below the
GNN.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.relational import (
    ColumnSpec,
    Database,
    DType,
    ForeignKey,
    Table,
    TableSchema,
)

__all__ = ["make_clinical"]

_DAY = 86400
_CHRONIC_CODES = ["E11", "I10", "J44", "N18"]
_ACUTE_CODES = ["J06", "A09", "S93", "H66", "L03", "R51"]
_DRUGS = ["metformin", "lisinopril", "salbutamol", "amoxicillin", "ibuprofen", "omeprazole"]


def make_clinical(
    num_patients: int = 250,
    span_days: int = 540,
    seed: int = 0,
) -> Database:
    """Build the clinical database."""
    rng = np.random.default_rng(seed)
    span = span_days * _DAY

    age = np.clip(rng.normal(55, 18, num_patients), 18, 95)
    sex = rng.choice(["f", "m"], size=num_patients)
    frailty = 0.02 * (age - 55) + rng.normal(0, 0.6, num_patients)
    chronic = rng.random(num_patients) < (0.25 + 0.15 * (age > 65))
    # Visit rate per day: chronic patients visit ~4x as often.
    visit_rate = np.exp(rng.normal(np.log(0.01), 0.5, num_patients)) * np.where(chronic, 4.0, 1.0)

    visit_rows: Dict[str, List] = {"id": [], "patient_id": [], "severity": [], "ts": []}
    diagnosis_rows: Dict[str, List] = {"id": [], "visit_id": [], "code": [], "ts": []}
    prescription_rows: Dict[str, List] = {"id": [], "visit_id": [], "drug": [], "ts": []}

    visit_id = diag_id = rx_id = 0
    for patient in range(num_patients):
        t = float(rng.integers(0, 30 * _DAY))
        rate_per_second = visit_rate[patient] / _DAY
        while True:
            t += rng.exponential(1.0 / rate_per_second)
            if t >= span:
                break
            severity = float(
                np.clip(frailty[patient] + (0.8 if chronic[patient] else 0.0) + rng.normal(0, 0.5), -2, 4)
            )
            ts = int(t)
            visit_rows["id"].append(visit_id)
            visit_rows["patient_id"].append(patient)
            visit_rows["severity"].append(round(severity, 2))
            visit_rows["ts"].append(ts)
            # Diagnoses: chronic patients usually record their chronic code.
            if chronic[patient] and rng.random() < 0.8:
                code = _CHRONIC_CODES[patient % len(_CHRONIC_CODES)]
            else:
                code = _ACUTE_CODES[int(rng.integers(0, len(_ACUTE_CODES)))]
            diagnosis_rows["id"].append(diag_id)
            diagnosis_rows["visit_id"].append(visit_id)
            diagnosis_rows["code"].append(code)
            diagnosis_rows["ts"].append(ts)
            diag_id += 1
            # Prescriptions scale with severity.
            for _ in range(rng.poisson(max(severity, 0.0) + 0.3)):
                prescription_rows["id"].append(rx_id)
                prescription_rows["visit_id"].append(visit_id)
                prescription_rows["drug"].append(_DRUGS[int(rng.integers(0, len(_DRUGS)))])
                prescription_rows["ts"].append(ts)
                rx_id += 1
            visit_id += 1

    db = Database("clinical")
    db.add_table(
        Table.from_dict(
            TableSchema(
                "patients",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("age", DType.FLOAT64),
                    ColumnSpec("sex", DType.STRING),
                ],
                primary_key="id",
            ),
            {
                "id": list(range(num_patients)),
                "age": np.round(age, 1).tolist(),
                "sex": sex.tolist(),
            },
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "visits",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("patient_id", DType.INT64),
                    ColumnSpec("severity", DType.FLOAT64),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("patient_id", "patients", "id")],
                time_column="ts",
            ),
            visit_rows,
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "diagnoses",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("visit_id", DType.INT64),
                    ColumnSpec("code", DType.STRING),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("visit_id", "visits", "id")],
                time_column="ts",
            ),
            diagnosis_rows,
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "prescriptions",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("visit_id", DType.INT64),
                    ColumnSpec("drug", DType.STRING),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("visit_id", "visits", "id")],
                time_column="ts",
            ),
            prescription_rows,
        )
    )
    db.validate()
    return db
