"""Forum dataset: users, posts, votes, comments.

Generative process:

* users have a base posting rate and an *encouragement sensitivity*;
* each post's vote count is driven by its author's latent talent and
  the post topic's popularity;
* a user's posting rate is **multiplied** by a feedback factor that
  grows with the votes their recent posts received — so whether a user
  posts next week depends on information that is two foreign-key hops
  away (user → their posts → votes on those posts);
* comments are additional one-hop noise activity.

This is the dataset where the GNN's advantage over one-hop tabular
features should be largest, and where depth 2 should clearly beat
depth 1 (Figure 1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.relational import (
    ColumnSpec,
    Database,
    DType,
    ForeignKey,
    Table,
    TableSchema,
)

__all__ = ["make_forum"]

_DAY = 86400
_TOPICS = ["python", "sql", "ml", "devops", "frontend", "random"]


def make_forum(
    num_users: int = 250,
    span_days: int = 360,
    seed: int = 0,
) -> Database:
    """Build the forum database (week-quantized activity simulation)."""
    rng = np.random.default_rng(seed)
    num_weeks = span_days // 7
    week = 7 * _DAY

    signup = rng.integers(0, (span_days // 3) * _DAY, size=num_users)
    talent = rng.normal(0, 1, size=num_users)
    base_rate = np.exp(rng.normal(np.log(1.0), 0.4, size=num_users))  # posts/week
    sensitivity = rng.uniform(0.5, 2.0, size=num_users)
    topic_pref = rng.dirichlet(np.full(len(_TOPICS), 0.6), size=num_users)
    topic_popularity = np.exp(rng.normal(0, 0.5, size=len(_TOPICS)))

    post_rows: Dict[str, List] = {"id": [], "user_id": [], "topic": [], "ts": []}
    vote_rows: Dict[str, List] = {"id": [], "post_id": [], "voter_id": [], "ts": []}
    comment_rows: Dict[str, List] = {"id": [], "post_id": [], "user_id": [], "ts": []}

    # recent_votes[u] = votes received by u's posts in the previous week.
    recent_votes = np.zeros(num_users)
    pid = vid = cid = 0
    for week_index in range(num_weeks):
        week_start = week_index * week
        votes_this_week = np.zeros(num_users)
        for user in range(num_users):
            if signup[user] > week_start:
                continue
            # The planted two-hop signal: next week's posting rate is
            # driven by the votes last week's posts received.
            feedback = sensitivity[user] * np.log1p(recent_votes[user])
            rate = base_rate[user] * 0.35 * np.exp(0.7 * feedback)
            num_posts = rng.poisson(min(rate, 6.0))
            for _ in range(num_posts):
                topic = int(rng.choice(len(_TOPICS), p=topic_pref[user]))
                ts = int(week_start + rng.integers(0, week))
                post_rows["id"].append(pid)
                post_rows["user_id"].append(user)
                post_rows["topic"].append(_TOPICS[topic])
                post_rows["ts"].append(ts)
                # Votes arrive shortly after the post.
                expected_votes = np.exp(0.8 * talent[user]) * topic_popularity[topic]
                num_votes = rng.poisson(expected_votes)
                votes_this_week[user] += num_votes
                for _ in range(num_votes):
                    voter = int(rng.integers(0, num_users))
                    vote_rows["id"].append(vid)
                    vote_rows["post_id"].append(pid)
                    vote_rows["voter_id"].append(voter)
                    vote_rows["ts"].append(ts + int(rng.integers(0, 3 * _DAY)))
                    vid += 1
                if rng.random() < 0.5:
                    commenter = int(rng.integers(0, num_users))
                    comment_rows["id"].append(cid)
                    comment_rows["post_id"].append(pid)
                    comment_rows["user_id"].append(commenter)
                    comment_rows["ts"].append(ts + int(rng.integers(0, 2 * _DAY)))
                    cid += 1
                pid += 1
        recent_votes = votes_this_week

    db = Database("forum")
    db.add_table(
        Table.from_dict(
            TableSchema(
                "users",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("signup_ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                time_column="signup_ts",
            ),
            {"id": list(range(num_users)), "signup_ts": signup.tolist()},
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "posts",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("user_id", DType.INT64),
                    ColumnSpec("topic", DType.STRING),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("user_id", "users", "id")],
                time_column="ts",
            ),
            post_rows,
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "votes",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("post_id", DType.INT64),
                    ColumnSpec("voter_id", DType.INT64),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("post_id", "posts", "id"),
                    ForeignKey("voter_id", "users", "id"),
                ],
                time_column="ts",
            ),
            vote_rows,
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "comments",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("post_id", DType.INT64),
                    ColumnSpec("user_id", DType.INT64),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("post_id", "posts", "id"),
                    ForeignKey("user_id", "users", "id"),
                ],
                time_column="ts",
            ),
            comment_rows,
        )
    )
    db.validate()
    return db
