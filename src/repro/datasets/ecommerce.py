"""E-commerce dataset: customers, products, orders, reviews.

Generative process (all latent, never stored in the database):

* every product belongs to one of ``num_categories`` categories and
  has a latent quality ~ N(0, 1); price is category-dependent;
* every customer has a base order rate (lognormal), a category
  preference (Dirichlet), and an *engagement state* that starts
  engaged and lapses with a per-customer daily hazard; lapsed
  customers place almost no further orders;
* order products are drawn ∝ category preference × within-category
  popularity (Zipf);
* a fraction of orders produce reviews whose rating tracks the
  product's latent quality.

What this plants:

* **churn** ("will the customer order in the next 30 days") is
  predictable from recency/frequency of past orders — the engagement
  state is hidden, but its footprint is the order history (1 hop);
* **spend** (90-day SUM of amounts) adds the price level of the
  preferred category (2 hops: customer → orders → products);
* **next-product** (LIST) is predictable from category preference
  revealed by past purchases plus global popularity.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.relational import (
    Column,
    ColumnSpec,
    Database,
    DType,
    ForeignKey,
    Table,
    TableSchema,
    days,
)

__all__ = ["make_ecommerce"]

_DAY = 86400
_REGIONS = ["na", "eu", "apac", "latam"]


def make_ecommerce(
    num_customers: int = 300,
    num_products: int = 120,
    num_categories: int = 6,
    span_days: int = 360,
    seed: int = 0,
) -> Database:
    """Build the e-commerce database.

    Parameters scale the dataset; defaults run the full pipeline in
    seconds.  The time span starts at epoch 0.
    """
    rng = np.random.default_rng(seed)
    span = span_days * _DAY

    # ---- products -----------------------------------------------------
    product_category = rng.integers(0, num_categories, size=num_products)
    category_price = np.exp(rng.normal(2.5, 0.6, size=num_categories))
    product_price = category_price[product_category] * np.exp(rng.normal(0, 0.3, num_products))
    product_quality = rng.normal(0, 1, num_products)
    # Within-category popularity: Zipf-like weights.
    popularity = 1.0 / (1.0 + rng.permutation(num_products).astype(np.float64))

    # ---- customers ----------------------------------------------------
    signup = rng.integers(0, span // 2, size=num_customers)
    base_rate = np.exp(rng.normal(np.log(0.08), 0.7, size=num_customers))  # orders/day
    lapse_hazard = np.exp(rng.normal(np.log(0.006), 0.8, size=num_customers))
    preference = rng.dirichlet(np.full(num_categories, 0.5), size=num_customers)
    region = rng.choice(_REGIONS, size=num_customers)
    age = np.clip(rng.normal(40, 12, num_customers), 18, 90)

    # Lapse time: exponential with the customer's hazard, after signup.
    lapse_after = rng.exponential(1.0 / lapse_hazard) * _DAY
    lapse_time = signup + lapse_after.astype(np.int64)

    order_rows: Dict[str, List] = {
        "id": [], "customer_id": [], "product_id": [], "quantity": [], "amount": [], "ts": []
    }
    review_rows: Dict[str, List] = {
        "id": [], "customer_id": [], "product_id": [], "rating": [], "ts": []
    }
    category_products = [np.flatnonzero(product_category == c) for c in range(num_categories)]
    category_pop = [popularity[idx] / popularity[idx].sum() for idx in category_products]

    oid = rid = 0
    for customer in range(num_customers):
        t = float(signup[customer])
        active_until = min(float(lapse_time[customer]), float(span))
        rate_per_second = base_rate[customer] / _DAY
        while True:
            t += rng.exponential(1.0 / rate_per_second)
            if t >= active_until:
                break
            category = rng.choice(num_categories, p=preference[customer])
            pool = category_products[category]
            if len(pool) == 0:
                continue
            product = int(rng.choice(pool, p=category_pop[category]))
            quantity = int(rng.integers(1, 4))
            amount = float(product_price[product] * quantity * np.exp(rng.normal(0, 0.05)))
            order_rows["id"].append(oid)
            order_rows["customer_id"].append(customer)
            order_rows["product_id"].append(product)
            order_rows["quantity"].append(quantity)
            order_rows["amount"].append(round(amount, 2))
            order_rows["ts"].append(int(t))
            oid += 1
            if rng.random() < 0.3:
                rating = float(np.clip(3.0 + product_quality[product] + rng.normal(0, 0.7), 1, 5))
                review_rows["id"].append(rid)
                review_rows["customer_id"].append(customer)
                review_rows["product_id"].append(product)
                review_rows["rating"].append(round(rating, 1))
                review_rows["ts"].append(int(t) + int(rng.integers(_DAY, 7 * _DAY)))
                rid += 1

    db = Database("ecommerce")
    db.add_table(
        Table.from_dict(
            TableSchema(
                "customers",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("region", DType.STRING),
                    ColumnSpec("age", DType.FLOAT64),
                    ColumnSpec("signup_ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                time_column="signup_ts",
            ),
            {
                "id": list(range(num_customers)),
                "region": region.tolist(),
                "age": np.round(age, 1).tolist(),
                "signup_ts": signup.tolist(),
            },
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "products",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("category", DType.STRING),
                    ColumnSpec("price", DType.FLOAT64),
                ],
                primary_key="id",
            ),
            {
                "id": list(range(num_products)),
                "category": [f"cat{c}" for c in product_category.tolist()],
                "price": np.round(product_price, 2).tolist(),
            },
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "orders",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("customer_id", DType.INT64),
                    ColumnSpec("product_id", DType.INT64),
                    ColumnSpec("quantity", DType.INT64),
                    ColumnSpec("amount", DType.FLOAT64),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("customer_id", "customers", "id"),
                    ForeignKey("product_id", "products", "id"),
                ],
                time_column="ts",
            ),
            order_rows,
        )
    )
    db.add_table(
        Table.from_dict(
            TableSchema(
                "reviews",
                [
                    ColumnSpec("id", DType.INT64),
                    ColumnSpec("customer_id", DType.INT64),
                    ColumnSpec("product_id", DType.INT64),
                    ColumnSpec("rating", DType.FLOAT64),
                    ColumnSpec("ts", DType.TIMESTAMP),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("customer_id", "customers", "id"),
                    ForeignKey("product_id", "products", "id"),
                ],
                time_column="ts",
            ),
            review_rows,
        )
    )
    db.validate()
    return db
