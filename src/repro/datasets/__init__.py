"""Synthetic relational datasets with planted, temporally consistent signal.

These stand in for the public relational datasets the keynote's
pipeline targets (Amazon reviews, Stack Exchange, clinical trials…).
Each generator produces a multi-table :class:`~repro.relational.Database`
whose generative process plants a *known* predictive signal:

* :mod:`repro.datasets.ecommerce` — customers/products/orders/reviews;
  churn and spend are driven by a latent per-customer engagement state
  that decays over time (recency/frequency signal, 1 hop) plus category
  preferences (2 hops);
* :mod:`repro.datasets.forum` — users/posts/votes/comments; future
  posting is driven by the feedback (votes) a user's recent posts
  received — a genuinely *two-hop* signal (user → posts → votes);
* :mod:`repro.datasets.clinical` — patients/visits/diagnoses/
  prescriptions; readmission risk is driven by chronic diagnosis codes
  attached to past visits (two-hop) plus visit severity (one hop).

:mod:`repro.datasets.base` registers each dataset together with its
benchmark tasks (PQL strings) so the benchmark harness can iterate
``for dataset in REGISTRY: ...``.
"""

from repro.datasets.base import DatasetSpec, TaskSpec, REGISTRY, get_dataset
from repro.datasets.ecommerce import make_ecommerce
from repro.datasets.forum import make_forum
from repro.datasets.clinical import make_clinical

__all__ = [
    "DatasetSpec",
    "TaskSpec",
    "REGISTRY",
    "get_dataset",
    "make_ecommerce",
    "make_forum",
    "make_clinical",
]
