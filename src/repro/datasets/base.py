"""Dataset registry: each dataset plus its benchmark tasks.

The registry drives the benchmark harness: every Table 2/3/4 row is a
(dataset, task) pair looked up here, with the task expressed purely as
a PQL string — there is no task-specific code anywhere downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.eval.splits import TemporalSplit, make_temporal_split
from repro.relational.database import Database

__all__ = ["TaskSpec", "DatasetSpec", "REGISTRY", "get_dataset"]


@dataclass(frozen=True)
class TaskSpec:
    """One benchmark task: a name, a PQL query, and the headline metric."""

    name: str
    query: str
    metric: str
    kind: str  # "binary" | "regression" | "link"
    #: Training cutoffs to lay out before validation (temporal split).
    num_train_cutoffs: int = 3


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset generator plus its registered tasks."""

    name: str
    builder: Callable[..., Database]
    tasks: Tuple[TaskSpec, ...]

    def build(self, scale: float = 1.0, seed: int = 0) -> Database:
        """Instantiate the database at a relative ``scale``."""
        return self.builder(scale=scale, seed=seed)

    def task(self, name: str) -> TaskSpec:
        """Look up a task by name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"dataset {self.name!r} has no task {name!r}")

    def split_for(self, db: Database, task: TaskSpec, horizon_seconds: int) -> TemporalSplit:
        """Default temporal split for a task over this database."""
        span = db.time_span()
        if span is None:
            raise ValueError(f"dataset {self.name!r} has no temporal tables")
        return make_temporal_split(
            span[0], span[1], horizon_seconds, num_train_cutoffs=task.num_train_cutoffs
        )


def _build_ecommerce(scale: float = 1.0, seed: int = 0) -> Database:
    from repro.datasets.ecommerce import make_ecommerce

    return make_ecommerce(
        num_customers=max(int(300 * scale), 30),
        num_products=max(int(120 * scale), 12),
        seed=seed,
    )


def _build_forum(scale: float = 1.0, seed: int = 0) -> Database:
    from repro.datasets.forum import make_forum

    return make_forum(num_users=max(int(250 * scale), 25), seed=seed)


def _build_clinical(scale: float = 1.0, seed: int = 0) -> Database:
    from repro.datasets.clinical import make_clinical

    return make_clinical(num_patients=max(int(250 * scale), 25), seed=seed)


REGISTRY: Dict[str, DatasetSpec] = {
    "ecommerce": DatasetSpec(
        name="ecommerce",
        builder=_build_ecommerce,
        tasks=(
            TaskSpec(
                name="churn",
                query=(
                    "PREDICT COUNT(orders) > 0 FOR EACH customers.id "
                    "ASSUMING HORIZON 30 DAYS"
                ),
                metric="auroc",
                kind="binary",
            ),
            TaskSpec(
                name="spend",
                query=(
                    "PREDICT SUM(orders.amount) FOR EACH customers.id "
                    "ASSUMING HORIZON 60 DAYS"
                ),
                metric="mae",
                kind="regression",
            ),
            TaskSpec(
                name="next_product",
                query=(
                    "PREDICT LIST(orders.product_id) FOR EACH customers.id "
                    "ASSUMING HORIZON 30 DAYS"
                ),
                metric="mrr",
                kind="link",
                num_train_cutoffs=2,
            ),
        ),
    ),
    "forum": DatasetSpec(
        name="forum",
        builder=_build_forum,
        tasks=(
            TaskSpec(
                name="engagement",
                query=(
                    "PREDICT COUNT(posts) > 0 FOR EACH users.id "
                    "ASSUMING HORIZON 14 DAYS"
                ),
                metric="auroc",
                kind="binary",
            ),
            TaskSpec(
                name="post_votes",
                query=(
                    "PREDICT COUNT(votes) FOR EACH posts.id "
                    "WHERE AGE < 14 DAYS ASSUMING HORIZON 14 DAYS"
                ),
                metric="mae",
                kind="regression",
            ),
            TaskSpec(
                name="votes_received",
                query=(
                    "PREDICT COUNT(votes VIA posts) FOR EACH users.id "
                    "ASSUMING HORIZON 14 DAYS"
                ),
                metric="mae",
                kind="regression",
            ),
        ),
    ),
    "clinical": DatasetSpec(
        name="clinical",
        builder=_build_clinical,
        tasks=(
            TaskSpec(
                name="readmission",
                query=(
                    "PREDICT COUNT(visits) > 0 FOR EACH patients.id "
                    "ASSUMING HORIZON 60 DAYS"
                ),
                metric="auroc",
                kind="binary",
            ),
            TaskSpec(
                name="visit_count",
                query=(
                    "PREDICT COUNT(visits) FOR EACH patients.id "
                    "ASSUMING HORIZON 90 DAYS"
                ),
                metric="mae",
                kind="regression",
            ),
        ),
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    """Registry lookup with a helpful error."""
    if name not in REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(REGISTRY)}")
    return REGISTRY[name]
