"""Loss functions.

All losses return a scalar :class:`~repro.nn.tensor.Tensor` (mean over
the batch) so ``loss.backward()`` starts from a well-defined gradient.
Targets are plain numpy arrays — they never need gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "huber_loss",
    "bpr_loss",
]


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, pos_weight: Optional[float] = None
) -> Tensor:
    """Stable binary cross-entropy on raw logits.

    Uses the identity ``bce = max(z, 0) - z*y + log(1 + exp(-|z|))``.
    ``pos_weight`` multiplies the positive-class term, for class
    imbalance.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype).reshape(logits.shape)
    # bce = softplus(z) - z*y, which equals -y*log(p) - (1-y)*log(1-p);
    # the fused kernel backpropagates sigmoid(z) - y directly.
    weight = pos_weight if pos_weight is not None and pos_weight != 1.0 else None
    return F.bce_with_logits(logits, targets, pos_weight=weight).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Multiclass cross-entropy: ``logits`` is (n, C), ``targets`` int (n,)."""
    targets = np.asarray(targets, dtype=np.int64)
    n, _ = logits.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} does not match batch {n}")
    return F.softmax_cross_entropy(logits, targets)


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = pred - Tensor(np.asarray(targets, dtype=pred.data.dtype).reshape(pred.shape))
    return (diff * diff).mean()


def l1_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error."""
    diff = pred - Tensor(np.asarray(targets, dtype=pred.data.dtype).reshape(pred.shape))
    return diff.abs().mean()


def huber_loss(pred: Tensor, targets: np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta``, linear outside.

    Implemented with the smooth form
    ``delta^2 * (sqrt(1 + (r/delta)^2) - 1)`` (pseudo-Huber), which has
    the same asymptotics and is differentiable everywhere.
    """
    targets = np.asarray(targets, dtype=pred.data.dtype).reshape(pred.shape)
    residual = pred - Tensor(targets)
    scaled = residual * (1.0 / delta)
    return (((scaled * scaled + 1.0).sqrt() - 1.0) * (delta**2)).mean()


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian personalized ranking loss: -log sigmoid(pos - neg)."""
    diff = pos_scores - neg_scores
    # -log(sigmoid(x)) = softplus(-x), computed stably.
    return (diff * -1.0).softplus().mean()
