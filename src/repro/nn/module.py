"""Module base class: parameter registration, train/eval, state dicts."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter.

    ``dtype`` selects the compute dtype (float64 default; float32 for
    the fast training path).  Initializers hand in float64 arrays, so
    the cast happens exactly once, here.
    """

    def __init__(self, data, dtype=None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype or np.float64)


class Module:
    """Base class for neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances
    as attributes; those are discovered automatically for
    :meth:`parameters`, :meth:`state_dict`, and mode switching.
    Dict-valued attributes of modules/parameters (as used by
    heterogeneous GNN layers keyed by relation) are also traversed.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) pairs, depth-first.

        Shared submodules/parameters (the same object reachable under
        several names) are yielded once, under the first name found.
        """
        yield from self._named_parameters(prefix, set())

    def _named_parameters(self, prefix: str, seen: set) -> Iterator[Tuple[str, Parameter]]:
        if id(self) in seen:
            return
        seen.add(id(self))
        for name, value in sorted(vars(self).items()):
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield full, value
            elif isinstance(value, Module):
                yield from value._named_parameters(f"{full}.", seen)
            elif isinstance(value, dict):
                for key, item in sorted(value.items(), key=lambda kv: str(kv[0])):
                    if isinstance(item, Parameter):
                        if id(item) not in seen:
                            seen.add(id(item))
                            yield f"{full}.{key}", item
                    elif isinstance(item, Module):
                        yield from item._named_parameters(f"{full}.{key}.", seen)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        if id(item) not in seen:
                            seen.add(id(item))
                            yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item._named_parameters(f"{full}.{i}.", seen)

    def parameters(self) -> List[Parameter]:
        """All parameters, depth-first."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants (shared modules once)."""
        yield from self._modules(set())

    def _modules(self, seen: set) -> Iterator["Module"]:
        if id(self) in seen:
            return
        seen.add(id(self))
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value._modules(seen)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from item._modules(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._modules(seen)

    # ------------------------------------------------------------------
    # Mode and gradients
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch to training mode (enables dropout etc.)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter data saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"parameter {name!r}: shape {param.data.shape} != saved {state[name].shape}"
                )
            param.data[...] = state[name]

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any):
        """Compute the module's output; subclasses override."""
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any):
        return self.forward(*args, **kwargs)
