"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so
training runs are reproducible end-to-end from a single seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros"]


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform for ReLU networks: U(-a, a) with a = sqrt(6 / fan_in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Zero-mean gaussian with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero array (biases)."""
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
