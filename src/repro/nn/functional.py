"""Fused autograd kernels for the hot compute path.

Each function here collapses what would be several :class:`~repro.nn.tensor.Tensor`
graph nodes (and their intermediate gradient buffers) into a single
node with a hand-written backward:

* :func:`addmm`           — ``x @ W + b`` as one node
* :func:`linear_relu`     — ``relu(x @ W + b)`` as one node
* :func:`softmax_cross_entropy` — mean NLL over integer targets;
  backward is the classic ``softmax - onehot`` without materializing
  log-softmax intermediates in the graph
* :func:`bce_with_logits` — elementwise binary cross-entropy from
  logits; backward is ``sigmoid(z) - y`` (per-example, pre-reduction)

All kernels fall back to the unfused op-by-op composition when fusion
is disabled (:func:`set_fused` / :func:`fusion`), which is what the
gradcheck and equivalence suites diff against.  Kernels inherit their
compute dtype from the inputs — float32 graphs stay float32.
"""

from __future__ import annotations

import contextlib
from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "addmm",
    "linear_relu",
    "softmax_cross_entropy",
    "bce_with_logits",
    "set_fused",
    "fused_enabled",
    "fusion",
]

_FUSED_ENABLED = True


def set_fused(enabled: bool) -> None:
    """Globally enable/disable kernel fusion (tests and benchmarks)."""
    global _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)


def fused_enabled() -> bool:
    """Whether fused kernels are active."""
    return _FUSED_ENABLED


@contextlib.contextmanager
def fusion(enabled: bool):
    """Context manager scoping :func:`set_fused`."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    return np.where(
        z >= 0,
        1.0 / (1.0 + np.exp(-np.clip(z, None, 500))),
        np.exp(np.clip(z, -500, None)) / (1.0 + np.exp(np.clip(z, -500, None))),
    )


# ----------------------------------------------------------------------
# Linear kernels
# ----------------------------------------------------------------------
def addmm(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight + bias`` as a single graph node (2-D ``x`` only;
    other ranks fall back to the unfused composition)."""
    if not _FUSED_ENABLED or x.data.ndim != 2 or weight.data.ndim != 2:
        out = x @ weight
        return out + bias if bias is not None else out
    data = x.data @ weight.data
    if bias is not None:
        data += bias.data

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if x.requires_grad:
            x._accumulate(grad @ weight.data.T, owned=True)
        if weight.requires_grad:
            weight._accumulate(x.data.T @ grad, owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0), owned=True)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(data, parents, backward)


def linear_relu(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``relu(x @ weight + bias)`` as a single graph node."""
    if not _FUSED_ENABLED or x.data.ndim != 2 or weight.data.ndim != 2:
        return addmm(x, weight, bias).relu()
    pre = x.data @ weight.data
    if bias is not None:
        pre += bias.data
    mask = pre > 0
    data = np.where(mask, pre, 0.0)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad) * mask
        if x.requires_grad:
            x._accumulate(g @ weight.data.T, owned=True)
        if weight.requires_grad:
            weight._accumulate(x.data.T @ g, owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=0), owned=True)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(data, parents, backward)


# ----------------------------------------------------------------------
# Loss kernels
# ----------------------------------------------------------------------
def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy over integer class targets, fused.

    Backward is the closed form ``(softmax - onehot) / n`` — one
    buffer, versus the log-softmax/one-hot/multiply/mean chain of the
    unfused composition.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if not _FUSED_ENABLED:
        num_classes = logits.data.shape[-1]
        log_probs = logits.log_softmax(axis=-1)
        one_hot = np.eye(num_classes, dtype=logits.data.dtype)[targets]
        return -(log_probs * Tensor(one_hot)).sum(axis=-1).mean()
    shifted = logits.data - logits.data.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_norm
    rows = np.arange(len(targets))
    nll = -log_probs[rows, targets]
    data = np.asarray(nll.mean(), dtype=logits.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        scale = np.asarray(grad, dtype=logits.data.dtype) / max(len(targets), 1)
        grad_logits = np.exp(log_probs)
        grad_logits[rows, targets] -= 1.0
        grad_logits *= scale
        logits._accumulate(grad_logits, owned=True)

    return Tensor._make(data, (logits,), backward)


def bce_with_logits(
    logits: Tensor, targets: np.ndarray, pos_weight: Optional[float] = None
) -> Tensor:
    """Per-example binary cross-entropy from logits, fused.

    Returns the *unreduced* per-example loss (callers apply masking /
    weighting / mean, matching :func:`repro.nn.losses.binary_cross_entropy_with_logits`).
    Backward is ``w * (sigmoid(z) - y)`` with ``w`` the positive-class
    weight — no softplus/sigmoid intermediates in the graph.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    if not _FUSED_ENABLED:
        t = Tensor(targets)
        per_example = logits.softplus() - logits * t
        if pos_weight is not None:
            weights = Tensor(np.where(targets > 0.5, float(pos_weight), 1.0).astype(logits.data.dtype))
            per_example = per_example * weights
        return per_example
    z = logits.data
    per_example = np.logaddexp(0.0, z) - z * targets
    weights = None
    if pos_weight is not None:
        weights = np.where(targets > 0.5, float(pos_weight), 1.0).astype(z.dtype)
        per_example = per_example * weights

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        dz = _stable_sigmoid(z) - targets
        if weights is not None:
            dz *= weights
        dz *= np.asarray(grad)
        logits._accumulate(dz, owned=True)

    return Tensor._make(per_example, (logits,), backward)
