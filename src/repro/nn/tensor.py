"""Reverse-mode automatic differentiation on numpy arrays.

The :class:`Tensor` records a dynamic computation graph: every
differentiable op stores its parents and a closure that accumulates
gradients into them.  :meth:`Tensor.backward` topologically sorts the
graph and runs the closures in reverse.

Floating data participates in differentiation in a configurable
compute dtype: float64 by default (the reference numerics), float32
when a model opts in via ``dtype=`` for speed.  Integer index arrays
are passed as plain numpy arrays to ops like :meth:`Tensor.take` and
:func:`scatter-style <repro.gnn.scatter>` aggregations.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "as_dtype"]

_GRAD_ENABLED = True

#: Dtypes a Tensor will keep as-is; everything else is cast to float64.
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def as_dtype(spec) -> np.dtype:
    """Resolve a compute-dtype spec (``"float32"``/``"float64"``/numpy
    dtype/None) to a numpy dtype; ``None`` means the float64 default."""
    if spec is None:
        return np.dtype(np.float64)
    dtype = np.dtype(spec)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError(f"compute dtype must be float32 or float64, got {dtype}")
    return dtype


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like.  float32/float64 arrays are kept as-is; anything
        else is cast to float64.  Pass ``dtype`` to force a cast.
    requires_grad:
        Whether gradients should flow into this tensor (leaf
        parameters set this true).
    dtype:
        Optional compute dtype (float32 or float64) to cast ``data`` to.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, dtype=None) -> None:
        if dtype is not None:
            self.data = np.asarray(data, dtype=as_dtype(dtype))
        else:
            arr = np.asarray(data)
            if arr.dtype not in _FLOAT_DTYPES:
                arr = arr.astype(np.float64)
            self.data = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def item(self) -> float:
        """The single scalar value (errors if not one element)."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ValueError(f"item() requires a one-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """The raw data array (shared, do not mutate)."""
        return self.data

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into ``self.grad`` (allocated on first use).

        ``owned=True`` promises the caller just allocated ``grad`` for
        this tensor alone, so the first accumulation can adopt the
        array instead of copying it.  Mixed-dtype graphs (float32
        params fed float64 inputs) cast back to the tensor's dtype
        here, keeping accumulation in-place and dtype-stable.
        """
        grad = np.asarray(grad)
        if grad.dtype != self.data.dtype:
            grad = grad.astype(self.data.dtype)
            owned = True
        out = _unbroadcast(grad, self.data.shape)
        if out is not grad:
            owned = True
        if self.grad is None:
            self.grad = out if owned else out.copy()
        else:
            self.grad += out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        root_owned = grad is None
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad, owned=root_owned)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Intermediate (non-leaf) grads are consumed the moment the
                # closure runs; free them so deep graphs don't retain one
                # activation-sized buffer per op.
                node.grad = None

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _lift(self, value) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        # Python scalars follow this tensor's dtype (a 0-d float64 array
        # would otherwise silently upcast a float32 graph under NEP 50).
        if isinstance(value, (int, float, np.floating, np.integer)):
            return Tensor(value, dtype=self.data.dtype)
        return Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else grad * self.data)
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural log."""
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def tanh(self) -> "Tensor":
        """Elementwise tanh."""
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically stable)."""
        data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, None, 500))),
            np.exp(np.clip(self.data, -500, None)) / (1.0 + np.exp(np.clip(self.data, -500, None))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def softplus(self) -> "Tensor":
        """Elementwise ``log(1 + exp(x))``, computed stably; d/dx = sigmoid(x)."""
        data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sig = np.where(
                    self.data >= 0,
                    1.0 / (1.0 + np.exp(-np.clip(self.data, None, 500))),
                    np.exp(np.clip(self.data, -500, None))
                    / (1.0 + np.exp(np.clip(self.data, -500, None))),
                )
                self._accumulate(grad * sig)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        """Elementwise leaky ReLU."""
        mask = self.data > 0
        data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at 0)."""
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Elementwise clamp; gradient is zero outside [low, high]."""
        data = np.clip(self.data, low, high)
        inside = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * inside)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when ``None``)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (all axes when ``None``)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / max(count, 1))

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum over one axis; gradient flows to (first) argmax."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = data if keepdims else np.expand_dims(data, axis=axis)
            mask = self.data == expanded
            # Split gradient across ties to keep it a subgradient.
            counts = mask.sum(axis=axis, keepdims=True)
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.where(mask, g / counts, 0.0))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Reshape (view semantics on forward, exact reverse on backward)."""
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self) -> "Tensor":
        """Swap the last two axes."""
        data = self.data.swapaxes(-1, -2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).swapaxes(-1, -2))

        return Tensor._make(data, (self,), backward)

    def take(self, indices: np.ndarray) -> "Tensor":
        """Gather rows along axis 0 (repeats allowed; grads accumulate)."""
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def slice_rows(self, start: int, stop: int) -> "Tensor":
        """Contiguous row slice along axis 0."""
        data = self.data[start:stop]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                full[start:stop] = grad
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        """Concatenate tensors along ``axis``."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(grad, i, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # Softmax family (stable)
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_norm

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                softmax = np.exp(data)
                grad = np.asarray(grad)
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        return self.log_softmax(axis=axis).exp()
