"""Standard layers built on the autograd tensor."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = [
    "Linear",
    "MLP",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sequential",
]


class Linear(Module):
    """Affine map ``x @ W + b`` with Xavier-initialized weights.

    Parameters
    ----------
    in_features, out_features:
        Input / output widths.
    rng:
        Random generator for initialization.
    bias:
        Whether to include the additive bias term.
    dtype:
        Compute dtype for the parameters (default float64).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), dtype=dtype)
        self.bias = Parameter(init.zeros((out_features,)), dtype=dtype) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Affine transform of the last axis (fused ``addmm`` on 2-D input)."""
        return F.addmm(x, self.weight, self.bias)


class ReLU(Module):
    """ReLU as a module (for use in :class:`Sequential`)."""

    def forward(self, x: Tensor) -> Tensor:
        """Elementwise max(x, 0)."""
        return x.relu()


class Tanh(Module):
    """Tanh as a module."""

    def forward(self, x: Tensor) -> Tensor:
        """Elementwise tanh."""
        return x.tanh()


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    The generator is stored so repeated forward passes draw fresh masks
    while the whole run stays reproducible from one seed.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero units in training mode; identity in eval mode."""
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        """Pass ``x`` through every step in order."""
        for step in self.steps:
            x = step(x)
        return x

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, index: int) -> Module:
        return self.steps[index]


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and optional dropout.

    Parameters
    ----------
    dims:
        Layer widths, e.g. ``[64, 128, 1]`` builds two linear layers.
    rng:
        Random generator for initialization.
    dropout:
        Dropout probability applied after every hidden activation.
    final_activation:
        Whether to apply ReLU after the last layer too (default off,
        so the MLP can produce logits/regression outputs).
    dtype:
        Compute dtype for every layer's parameters (default float64).
    """

    def __init__(
        self,
        dims: Sequence[int],
        rng: np.random.Generator,
        dropout: float = 0.0,
        final_activation: bool = False,
        dtype=None,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        self.layers: List[Linear] = [
            Linear(d_in, d_out, rng, dtype=dtype) for d_in, d_out in zip(dims[:-1], dims[1:])
        ]
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        """Run the linear stack with fused linear+ReLU (+dropout) between layers."""
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            if i < last or self.final_activation:
                x = F.linear_relu(x, layer.weight, layer.bias)
                if self.dropout is not None:
                    x = self.dropout(x)
            else:
                x = layer(x)
        return x


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, dtype=None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=0.1), dtype=dtype)

    def forward(self, indices: np.ndarray) -> Tensor:
        """Embedding rows for integer ``indices`` (gradients accumulate)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding indices out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight.take(indices)


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5, dtype=None) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), dtype=dtype)
        self.beta = Parameter(np.zeros(dim), dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        """Normalize the last axis to zero mean / unit variance, then scale-shift."""
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta
