"""Numerical gradient checking.

Utilities for validating custom autograd ops against central finite
differences — the same harness the library's own test suite uses,
exposed publicly so downstream extensions (new layers, new scatter
kernels) can verify their backward passes in one line::

    from repro.nn.gradcheck import check_gradients

    check_gradients(lambda t: my_custom_op(t).sum(), x0)
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(
    func: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array.

    ``func`` must treat its input as read-only between calls; ``x`` is
    perturbed in place and restored.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = func(x)
        flat[i] = original - eps
        low = func(x)
        flat[i] = original
        out[i] = (high - low) / (2 * eps)
    return grad


def check_gradients(
    build: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-6,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert that autograd and finite differences agree.

    Parameters
    ----------
    build:
        Maps an input tensor to a *scalar* output tensor.
    x:
        Input point.  Avoid kinks (ReLU at 0, abs at 0): finite
        differences straddle them and disagree with any subgradient.
    atol, rtol, eps:
        Comparison and perturbation tolerances.

    Raises
    ------
    AssertionError
        With the elementwise mismatch when the check fails.
    """
    x = np.asarray(x, dtype=np.float64)
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor)
    if out.size != 1:
        raise ValueError(f"build must return a scalar, got shape {out.shape}")
    out.backward()
    analytic = tensor.grad
    expected = numeric_gradient(lambda arr: float(build(Tensor(arr)).data.reshape(())), x.copy(), eps=eps)
    np.testing.assert_allclose(analytic, expected, atol=atol, rtol=rtol)
