"""Neural-network substrate: reverse-mode autograd on numpy.

This package replaces the paper's PyTorch dependency.  It provides

* :mod:`repro.nn.tensor` — the autograd :class:`Tensor` with broadcasted
  arithmetic, matmul, reductions, indexing, and activation functions;
* :mod:`repro.nn.module` — the :class:`Module` base class with
  parameter registration and train/eval modes;
* :mod:`repro.nn.layers` — ``Linear``, ``MLP``, ``Embedding``,
  ``LayerNorm``, ``Dropout``, ``Sequential``;
* :mod:`repro.nn.losses` — classification/regression/ranking losses;
* :mod:`repro.nn.optim` — ``SGD``, ``Adam``, ``AdamW`` (flat-buffer
  vectorized by default), gradient clipping and LR schedules;
* :mod:`repro.nn.functional` — fused forward/backward kernels
  (``addmm``, ``linear_relu``, ``softmax_cross_entropy``);
* :mod:`repro.nn.init` — weight initializers.
"""

from repro.nn.tensor import Tensor, as_dtype, no_grad
from repro.nn import functional
from repro.nn.module import Module, Parameter
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, MLP, ReLU, Sequential, Tanh
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    bpr_loss,
    cross_entropy,
    huber_loss,
    l1_loss,
    mse_loss,
)
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm, CosineSchedule, StepSchedule
from repro.nn import init
from repro.nn.gradcheck import check_gradients, numeric_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "as_dtype",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sequential",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "huber_loss",
    "bpr_loss",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "CosineSchedule",
    "StepSchedule",
    "init",
    "check_gradients",
    "numeric_gradient",
]
