"""Optimizers, gradient clipping, and learning-rate schedules.

Optimizers run in *flat* mode by default: at construction every
parameter's storage is rebound to a view into one contiguous buffer
per dtype, so an update step is a handful of vectorized numpy ops over
the whole model instead of a Python loop per parameter.  The layout is
recorded in a manifest (:meth:`Optimizer.layout_manifest`) and the
per-parameter optimizer state (``_m``/``_v``/``_velocity``) is still
addressable by parameter index, so checkpoints are bit-identical to
the per-parameter reference implementation (``flat=False``), which is
kept for the equivalence suite.

The flat step is constructed to be *bit-identical* to the reference
step in every dtype: each vectorized expression performs exactly the
same elementwise operations in the same order as the reference loop
(exploiting that float ``+``/``*`` are bitwise commutative), and
parameters whose gradient is ``None`` are restored after the update,
matching the reference's ``continue``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "StepSchedule",
    "CosineSchedule",
]


class _Slot:
    """Placement of one parameter inside its dtype group's flat buffer."""

    __slots__ = ("param", "index", "offset", "size", "shape")

    def __init__(self, param: Parameter, index: int, offset: int) -> None:
        self.param = param
        self.index = index
        self.offset = offset
        self.size = param.data.size
        self.shape = param.data.shape


class _Group:
    """One dtype's contiguous data/grad buffers and the slots inside them."""

    __slots__ = ("dtype", "data", "grad", "slots")

    def __init__(self, dtype: np.dtype, total: int, slots: List[_Slot]) -> None:
        self.dtype = dtype
        self.data = np.empty(total, dtype=dtype)
        self.grad = np.zeros(total, dtype=dtype)
        self.slots = slots


class FlatParamSpace:
    """Contiguous flat storage for a parameter list, grouped by dtype.

    Construction copies each parameter's current values into the flat
    buffer and rebinds ``param.data`` to a reshaped view of it, so
    layers keep reading/writing their own storage while the optimizer
    updates the whole group with single vectorized expressions.
    """

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        by_dtype: Dict[np.dtype, List[Tuple[int, Parameter]]] = {}
        for index, param in enumerate(parameters):
            by_dtype.setdefault(param.data.dtype, []).append((index, param))
        self.groups: List[_Group] = []
        for dtype, members in by_dtype.items():
            offset = 0
            slots = []
            for index, param in members:
                slots.append(_Slot(param, index, offset))
                offset += param.data.size
            group = _Group(dtype, offset, slots)
            for slot in slots:
                group.data[slot.offset:slot.offset + slot.size] = slot.param.data.reshape(-1)
                slot.param.data = group.data[slot.offset:slot.offset + slot.size].reshape(slot.shape)
            self.groups.append(group)

    def layout_manifest(self) -> List[Dict]:
        """Stable description of where each parameter lives."""
        manifest = []
        for group in self.groups:
            for slot in group.slots:
                manifest.append(
                    {
                        "index": slot.index,
                        "dtype": str(group.dtype),
                        "offset": slot.offset,
                        "size": slot.size,
                        "shape": list(slot.shape),
                    }
                )
        return sorted(manifest, key=lambda entry: entry["index"])

    def gather(self) -> List[Tuple[int, _Slot]]:
        """Copy per-parameter grads into the flat grad buffers.

        Returns the slots whose parameter has no gradient (their grad
        slice is zeroed; the optimizer restores their state after the
        vectorized update, reproducing the reference's skip).
        """
        missing: List[Tuple[int, _Slot]] = []
        for gi, group in enumerate(self.groups):
            flat = group.grad
            for slot in group.slots:
                grad = slot.param.grad
                if grad is None:
                    flat[slot.offset:slot.offset + slot.size] = 0.0
                    missing.append((gi, slot))
                else:
                    flat[slot.offset:slot.offset + slot.size] = grad.reshape(-1)
        return missing

    def grad_norm(self) -> float:
        """Global L2 norm of the gathered flat gradients.

        Accumulated per parameter in registration order with the exact
        ``(grad ** 2).sum()`` reduction :func:`clip_grad_norm` uses, so
        flat clipping stays bit-identical to the per-parameter
        reference (a BLAS dot over the whole buffer can differ in the
        last ulp and would break checkpoint equivalence).
        """
        contributions: Dict[int, float] = {}
        for group in self.groups:
            for slot in group.slots:
                view = group.grad[slot.offset:slot.offset + slot.size]
                contributions[slot.index] = float((view**2).sum())
        total = 0.0
        for index in sorted(contributions):
            total += contributions[index]
        return math.sqrt(total)

    def scale_grads(self, scale: float) -> None:
        """Multiply every gathered flat gradient by ``scale`` (clipping)."""
        for group in self.groups:
            group.grad *= scale

    def alloc_like(self) -> List[np.ndarray]:
        """Zeroed state buffers, one per dtype group (for moments etc.)."""
        return [np.zeros_like(group.data) for group in self.groups]

    def state_views(self, buffers: Optional[List[np.ndarray]]) -> Dict[int, np.ndarray]:
        """Per-parameter-index views into state ``buffers``."""
        if buffers is None:
            return {}
        out: Dict[int, np.ndarray] = {}
        for group, buf in zip(self.groups, buffers):
            for slot in group.slots:
                out[slot.index] = buf[slot.offset:slot.offset + slot.size].reshape(slot.shape)
        return out

    def load_state(self, buffers: List[np.ndarray], mapping: Dict[int, np.ndarray]) -> None:
        """Zero ``buffers`` and scatter ``mapping`` (index -> array) into them."""
        for group, buf in zip(self.groups, buffers):
            buf[:] = 0.0
            for slot in group.slots:
                value = mapping.get(slot.index)
                if value is not None:
                    buf[slot.offset:slot.offset + slot.size] = np.asarray(
                        value, dtype=group.dtype
                    ).reshape(-1)


class Optimizer:
    """Base optimizer: holds parameters, the current LR, and flat storage.

    Parameters
    ----------
    parameters:
        The learnable parameters (their storage is rebound into a flat
        buffer unless ``flat=False``).
    lr:
        Learning rate.
    flat:
        ``True`` (default) uses the vectorized flat-buffer step;
        ``False`` keeps the original per-parameter Python loop (the
        reference the equivalence tests diff against).
    """

    def __init__(self, parameters: Sequence[Parameter], lr: float, flat: bool = True) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer created with no parameters")
        self.lr = lr
        self._flat: Optional[FlatParamSpace] = FlatParamSpace(self.parameters) if flat else None
        self._gathered = False
        self._missing: List[Tuple[int, _Slot]] = []

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def layout_manifest(self) -> List[Dict]:
        """Flat-buffer layout (index/dtype/offset/size/shape per parameter)."""
        if self._flat is not None:
            return self._flat.layout_manifest()
        return [
            {
                "index": i,
                "dtype": str(p.data.dtype),
                "offset": None,
                "size": p.data.size,
                "shape": list(p.data.shape),
            }
            for i, p in enumerate(self.parameters)
        ]

    def gather_and_clip(self, max_norm: Optional[float] = None) -> float:
        """Gather grads into the flat buffer and return the global L2 norm.

        When ``max_norm`` is given and exceeded, the flat gradients are
        scaled down (the per-parameter ``.grad`` arrays are left
        untouched; the subsequent :meth:`step` consumes the flat
        buffer).  In non-flat mode this falls back to
        :func:`clip_grad_norm`, which scales ``.grad`` in place.
        """
        if self._flat is None:
            return clip_grad_norm(self.parameters, math.inf if max_norm is None else max_norm)
        self._missing = self._flat.gather()
        self._gathered = True
        norm = self._flat.grad_norm()
        if max_norm is not None and norm > max_norm and norm > 0:
            self._flat.scale_grads(max_norm / norm)
        return norm

    # -- flat-mode helpers ------------------------------------------------
    def _ensure_gathered(self) -> None:
        if not self._gathered:
            self._missing = self._flat.gather()
            self._gathered = True

    def _save_missing(self, buffer_sets: List[List[np.ndarray]]) -> List[Tuple]:
        """Snapshot data+state slices of grad-less params before the update."""
        saved = []
        for gi, slot in self._missing:
            lo, hi = slot.offset, slot.offset + slot.size
            group = self._flat.groups[gi]
            copies = [group.data[lo:hi].copy()]
            for buffers in buffer_sets:
                if buffers is not None:
                    copies.append(buffers[gi][lo:hi].copy())
            saved.append((gi, lo, hi, copies))
        return saved

    def _restore_missing(self, saved: List[Tuple], buffer_sets: List[List[np.ndarray]]) -> None:
        for gi, lo, hi, copies in saved:
            group = self._flat.groups[gi]
            group.data[lo:hi] = copies[0]
            pos = 1
            for buffers in buffer_sets:
                if buffers is not None:
                    buffers[gi][lo:hi] = copies[pos]
                    pos += 1

    def step(self) -> None:
        """Apply one update; subclasses override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        flat: bool = True,
    ) -> None:
        super().__init__(parameters, lr, flat=flat)
        self.momentum = momentum
        self.weight_decay = weight_decay
        if self._flat is not None:
            self._flat_velocity = self._flat.alloc_like() if momentum else None
            self._scratch = self._flat.alloc_like()
        self._velocity = {}

    @property
    def _velocity(self) -> Dict[int, np.ndarray]:
        if self._flat is not None:
            return self._flat.state_views(self._flat_velocity)
        return self._velocity_dict

    @_velocity.setter
    def _velocity(self, value: Dict[int, np.ndarray]) -> None:
        if self._flat is not None:
            if self._flat_velocity is not None:
                self._flat.load_state(self._flat_velocity, value)
        else:
            self._velocity_dict = dict(value)

    def step(self) -> None:
        """Apply one (momentum) SGD update from accumulated gradients."""
        if self._flat is None:
            self._step_reference()
            return
        self._ensure_gathered()
        saved = self._save_missing([self._flat_velocity])
        for gi, group in enumerate(self._flat.groups):
            # All arithmetic lands in persistent scratch: zero
            # allocations per step, bit-identical to the reference
            # (float +/* are bitwise commutative).
            scratch = self._scratch[gi]
            grad = group.grad
            if self.weight_decay:
                np.multiply(group.data, self.weight_decay, out=scratch)
                scratch += grad
                grad = scratch
            if self.momentum:
                velocity = self._flat_velocity[gi]
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            if grad is scratch:
                scratch *= self.lr
            else:
                np.multiply(grad, self.lr, out=scratch)
            group.data -= scratch
        self._restore_missing(saved, [self._flat_velocity])
        self._gathered = False

    def _step_reference(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity_dict.get(i)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity_dict[i] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    #: AdamW flips this to apply decay to the weights instead of the grad.
    _decoupled_decay = False

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        flat: bool = True,
    ) -> None:
        super().__init__(parameters, lr, flat=flat)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        if self._flat is not None:
            self._flat_m = self._flat.alloc_like()
            self._flat_v = self._flat.alloc_like()
            self._scratch_a = self._flat.alloc_like()
            self._scratch_b = self._flat.alloc_like()
        self._m = {}
        self._v = {}
        self._t = 0

    # Checkpoint compatibility: resilience snapshots read/write the
    # moments as ``{param_index: array}`` regardless of storage mode.
    @property
    def _m(self) -> Dict[int, np.ndarray]:
        if self._flat is not None:
            return self._flat.state_views(self._flat_m)
        return self._m_dict

    @_m.setter
    def _m(self, value: Dict[int, np.ndarray]) -> None:
        if self._flat is not None:
            self._flat.load_state(self._flat_m, value)
        else:
            self._m_dict = dict(value)

    @property
    def _v(self) -> Dict[int, np.ndarray]:
        if self._flat is not None:
            return self._flat.state_views(self._flat_v)
        return self._v_dict

    @_v.setter
    def _v(self, value: Dict[int, np.ndarray]) -> None:
        if self._flat is not None:
            self._flat.load_state(self._flat_v, value)
        else:
            self._v_dict = dict(value)

    def _decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        # L2-style decay folded into the gradient (classic Adam).
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        """Apply one bias-corrected Adam update."""
        if self._flat is None:
            self._step_reference()
            return
        self._ensure_gathered()
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        saved = self._save_missing([self._flat_m, self._flat_v])
        for gi, group in enumerate(self._flat.groups):
            # All arithmetic lands in two persistent scratch buffers:
            # zero allocations per step, and every expression computes
            # the same floats (in the same order) as the reference loop.
            s_update, s_denom = self._scratch_a[gi], self._scratch_b[gi]
            grad = group.grad
            if self._decoupled_decay:
                if self.weight_decay:
                    np.multiply(group.data, self.lr * self.weight_decay, out=s_update)
                    group.data -= s_update
            elif self.weight_decay:
                np.multiply(group.data, self.weight_decay, out=s_update)
                grad += s_update  # grad + wd*data (float + is commutative)
            m, v = self._flat_m[gi], self._flat_v[gi]
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s_update)
            m += s_update
            np.multiply(grad, grad, out=s_update)
            s_update *= 1.0 - self.beta2
            v *= self.beta2
            v += s_update
            np.divide(m, bias1, out=s_update)
            s_update *= self.lr
            np.divide(v, bias2, out=s_denom)
            np.sqrt(s_denom, out=s_denom)
            s_denom += self.eps
            s_update /= s_denom
            group.data -= s_update
        self._restore_missing(saved, [self._flat_m, self._flat_v])
        self._gathered = False

    def _step_reference(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = self._decay(param, param.grad)
            m = self._m_dict.get(i)
            v = self._v_dict.get(i)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m_dict[i], self._v_dict[i] = m, v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    _decoupled_decay = True

    def _decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        # Decoupled: decay applied directly to weights, not the gradient.
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        return grad


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  (Flat-mode optimizers provide the
    vectorized :meth:`Optimizer.gather_and_clip` instead; this
    per-parameter version is kept as the reference and for ad-hoc use.)
    """
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


class StepSchedule:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the LR."""
        self._epoch += 1
        self.optimizer.lr = self._base_lr * (self.gamma ** (self._epoch // self.step_size))


class CosineSchedule:
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total_epochs = max(total_epochs, 1)
        self.min_lr = min_lr
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the LR."""
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cosine
