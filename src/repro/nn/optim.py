"""Optimizers, gradient clipping, and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm", "StepSchedule", "CosineSchedule"]


class Optimizer:
    """Base optimizer: holds parameters and the current learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer created with no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one (momentum) SGD update from accumulated gradients."""
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(i)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[i] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def _decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        # L2-style decay folded into the gradient (classic Adam).
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        """Apply one bias-corrected Adam update."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = self._decay(param, param.grad)
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[i], self._v[i] = m, v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        # Decoupled: decay applied directly to weights, not the gradient.
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        return grad


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


class StepSchedule:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the LR."""
        self._epoch += 1
        self.optimizer.lr = self._base_lr * (self.gamma ** (self._epoch // self.step_size))


class CosineSchedule:
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total_epochs = max(total_epochs, 1)
        self.min_lr = min_lr
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the LR."""
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cosine
