"""Time-respecting neighbor sampling.

Given seed nodes with seed times, the sampler grows an L-hop sampled
subgraph in which every traversed edge and every reached node existed
at the seed's time.  This is the property that makes the compiled
pipeline leak-free: a model input at prediction time ``t`` can only see
the database as of ``t``.

Node *instances* in a sampled subgraph are keyed by
``(original node id, seed-context time)``: the same row sampled under
two different seed times is two instances, because its valid
neighborhood differs.  Within one batch, seeds usually share a few
distinct cutoff times, so deduplication keeps subgraphs compact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.hetero import EdgeType, HeteroGraph
from repro.obs import trace as obs_trace
from repro.resilience.faults import fault_point

__all__ = ["SampledSubgraph", "NeighborSampler"]


def _concat_parts(parts: List[object]) -> np.ndarray:
    """Collapse a mixed list of int lists / int64 arrays into one array."""
    if not parts:
        return np.empty(0, dtype=np.int64)
    if len(parts) == 1:
        return np.asarray(parts[0], dtype=np.int64)
    return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


class SampledSubgraph:
    """The result of one sampling call.

    Internally, node/edge/degree columns are stored as *parts* — plain
    python lists fed by the scalar reference-sampler API plus numpy
    blocks appended by the vectorized sampler — and collapsed into
    contiguous int64/float64 arrays by :meth:`finalize`.  The compact
    array form (:meth:`to_arrays` / :meth:`from_arrays`) is what
    parallel sampler workers ship back to the parent instead of a
    pickled object graph.

    Attributes
    ----------
    seed_type:
        Node type of the seeds.
    seed_locals:
        Local indices (within ``seed_type``) of the seed instances, in
        the order the seeds were given.
    """

    def __init__(self, seed_type: str) -> None:
        self.seed_type = seed_type
        self.seed_locals: np.ndarray = np.empty(0, dtype=np.int64)
        # Per node type: parts of original ids / context times.  A part
        # is either a python list (scalar appends) or an int64 array.
        self._orig: Dict[str, List[object]] = {}
        self._ctx_time: Dict[str, List[object]] = {}
        self._index: Dict[str, Dict[Tuple[int, int], int]] = {}
        # Per edge type: (src parts, dst parts).
        self._edges: Dict[EdgeType, Tuple[List[object], List[object]]] = {}
        # Per node type: parts of degree rows — a part is either one
        # row (list of floats) or a 2D float64 block.
        self._degrees: Dict[str, List[object]] = {}
        self._degree_rows: Dict[str, int] = {}

    # -- construction (used by the sampler) ----------------------------
    def add_node(self, node_type: str, orig_id: int, ctx_time: int) -> Tuple[int, bool]:
        """Intern a node instance; returns (local index, was-new)."""
        index = self._index.setdefault(node_type, {})
        key = (orig_id, ctx_time)
        local = index.get(key)
        if local is not None:
            return local, False
        local = len(index)
        index[key] = local
        self._orig.setdefault(node_type, [[]])[-1].append(orig_id)
        self._ctx_time.setdefault(node_type, [[]])[-1].append(ctx_time)
        return local, True

    def set_degrees(self, node_type: str, local: int, degrees: List[float]) -> None:
        """Record time-valid in-degrees (one per incoming edge type)."""
        rows = self._degree_rows.get(node_type, 0)
        if local != rows:
            raise ValueError("degrees must be recorded in node-creation order")
        self._degrees.setdefault(node_type, []).append(degrees)
        self._degree_rows[node_type] = rows + 1

    def set_degrees_block(
        self, node_type: str, locals_: np.ndarray, degrees: np.ndarray
    ) -> None:
        """Bulk variant of :meth:`set_degrees`.

        ``locals_`` must be the next contiguous ascending run of local
        indices (the vectorized sampler interns a hop's new nodes
        sequentially, so this always holds there).
        """
        if len(locals_) == 0:
            return
        rows = self._degree_rows.get(node_type, 0)
        expected = np.arange(rows, rows + len(locals_), dtype=np.int64)
        if not np.array_equal(np.asarray(locals_, dtype=np.int64), expected):
            raise ValueError("degree blocks must cover the next contiguous locals")
        block = np.asarray(degrees, dtype=np.float64)
        self._degrees.setdefault(node_type, []).append(block)
        self._degree_rows[node_type] = rows + len(locals_)

    def add_edge(self, edge_type: EdgeType, src_local: int, dst_local: int) -> None:
        """Record one edge between local node instances."""
        src_parts, dst_parts = self._edges.setdefault(edge_type, ([], []))
        if not src_parts or not isinstance(src_parts[-1], list):
            src_parts.append([])
            dst_parts.append([])
        src_parts[-1].append(src_local)
        dst_parts[-1].append(dst_local)

    def add_edges(self, edge_type: EdgeType, src_locals, dst_locals) -> None:
        """Bulk variant of :meth:`add_edge` (appends one array block)."""
        src_parts, dst_parts = self._edges.setdefault(edge_type, ([], []))
        src_parts.append(np.asarray(src_locals, dtype=np.int64))
        dst_parts.append(np.asarray(dst_locals, dtype=np.int64))

    def finalize(self) -> "SampledSubgraph":
        """Collapse part lists into contiguous arrays (idempotent).

        Samplers call this once sampling ends; afterwards every
        accessor returns (views of) a single contiguous array and the
        subgraph is cheap to cache, compare, and serialize.
        """
        for store in (self._orig, self._ctx_time):
            for node_type, parts in store.items():
                store[node_type] = [_concat_parts(parts)]
        for edge_type, (src_parts, dst_parts) in self._edges.items():
            self._edges[edge_type] = (
                [_concat_parts(src_parts)],
                [_concat_parts(dst_parts)],
            )
        for node_type, parts in self._degrees.items():
            self._degrees[node_type] = [self._collapse_degrees(parts)]
        return self

    @staticmethod
    def _collapse_degrees(parts: List[object]) -> np.ndarray:
        if len(parts) == 1 and isinstance(parts[0], np.ndarray):
            return np.asarray(parts[0], dtype=np.float64)
        blocks: List[np.ndarray] = []
        pending: List[List[float]] = []
        for part in parts:
            if isinstance(part, np.ndarray):
                if pending:
                    blocks.append(np.asarray(pending, dtype=np.float64))
                    pending = []
                blocks.append(np.asarray(part, dtype=np.float64))
            else:
                pending.append(part)
        if pending:
            blocks.append(np.asarray(pending, dtype=np.float64))
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    # -- compact wire format (used by parallel sampler workers) ---------
    def to_arrays(self) -> Dict[str, object]:
        """Serialize to a dict of flat numpy arrays.

        The payload contains no python object graph — just the seed
        metadata plus per-type id/time/edge/degree columns — so it is
        cheap to pickle across a process boundary and rebuilds without
        re-interning via :meth:`from_arrays`.
        """
        self.finalize()
        return {
            "seed_type": self.seed_type,
            "seed_locals": self.seed_locals,
            "nodes": {
                node_type: (parts[0], self._ctx_time[node_type][0])
                for node_type, parts in self._orig.items()
            },
            "edges": {
                edge_type: (src_parts[0], dst_parts[0])
                for edge_type, (src_parts, dst_parts) in self._edges.items()
            },
            "degrees": {node_type: parts[0] for node_type, parts in self._degrees.items()},
        }

    @classmethod
    def from_arrays(cls, payload: Dict[str, object]) -> "SampledSubgraph":
        """Rebuild a (read-only) subgraph from :meth:`to_arrays` output."""
        subgraph = cls(payload["seed_type"])
        subgraph.seed_locals = np.asarray(payload["seed_locals"], dtype=np.int64)
        for node_type, (orig, ctx) in payload["nodes"].items():
            subgraph._orig[node_type] = [np.asarray(orig, dtype=np.int64)]
            subgraph._ctx_time[node_type] = [np.asarray(ctx, dtype=np.int64)]
        for edge_type, (src, dst) in payload["edges"].items():
            subgraph._edges[edge_type] = (
                [np.asarray(src, dtype=np.int64)],
                [np.asarray(dst, dtype=np.int64)],
            )
        for node_type, block in payload["degrees"].items():
            block = np.asarray(block, dtype=np.float64)
            subgraph._degrees[node_type] = [block]
            subgraph._degree_rows[node_type] = len(block)
        return subgraph

    # -- read access (used by the model) -------------------------------
    @property
    def node_types(self) -> List[str]:
        """Node types present in the subgraph."""
        return list(self._orig)

    @property
    def edge_types(self) -> List[EdgeType]:
        """Edge types present in the subgraph."""
        return list(self._edges)

    def num_nodes(self, node_type: str) -> int:
        """Instances of one node type."""
        return sum(len(p) for p in self._orig.get(node_type, ()))

    def total_nodes(self) -> int:
        """Instances over all types."""
        return sum(self.num_nodes(node_type) for node_type in self._orig)

    def total_edges(self) -> int:
        """Edges over all types."""
        return sum(
            sum(len(p) for p in src_parts) for src_parts, _ in self._edges.values()
        )

    def node_orig(self, node_type: str) -> np.ndarray:
        """Original (full-graph) node ids per instance."""
        return _concat_parts(self._orig.get(node_type, []))

    def node_ctx_time(self, node_type: str) -> np.ndarray:
        """Seed-context time per instance."""
        return _concat_parts(self._ctx_time.get(node_type, []))

    def edges_for(self, edge_type: EdgeType) -> Tuple[np.ndarray, np.ndarray]:
        """(src_local, dst_local) arrays for one edge type."""
        src_parts, dst_parts = self._edges.get(edge_type, ((), ()))
        return _concat_parts(list(src_parts)), _concat_parts(list(dst_parts))

    def node_degrees(self, node_type: str) -> np.ndarray:
        """Time-valid in-degrees per instance, shape (n, k).

        ``k`` is the number of edge types into ``node_type`` in the
        full graph, in :meth:`HeteroGraph.edge_types_into` order.
        Types with no incoming relations return shape (n, 0).
        """
        parts = self._degrees.get(node_type, [])
        if not parts:
            return np.zeros((self.num_nodes(node_type), 0))
        return self._collapse_degrees(parts)

    def zero_degree_channel(self, node_type: str, channel: int) -> None:
        """Zero one in-degree channel across every node of ``node_type``.

        Used by relation knockouts (``explain_relations``): removing an
        edge type's messages must also blank its degree feature, and
        callers cannot poke ``_degrees`` directly because its parts mix
        per-node rows with 2-D blocks.
        """
        for part in self._degrees.get(node_type, []):
            if isinstance(part, np.ndarray) and part.ndim == 2:
                part[:, channel] = 0.0
            else:
                part[channel] = 0.0


class NeighborSampler:
    """Samples L-hop time-respecting neighborhoods.

    Parameters
    ----------
    graph:
        The full heterogeneous graph.
    fanouts:
        Neighbors sampled per edge type at each hop; ``len(fanouts)``
        is the number of hops (use the model depth).
    rng:
        Random generator (sampling without replacement per neighbor
        list).
    time_respecting:
        When false, ignores timestamps entirely — the *leaky* variant
        used by the Figure 3 ablation.  Never use in production.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        fanouts: Sequence[int],
        rng: np.random.Generator,
        time_respecting: bool = True,
    ) -> None:
        if any(f <= 0 for f in fanouts):
            raise ValueError(f"fanouts must be positive, got {list(fanouts)}")
        self.graph = graph
        self.fanouts = list(fanouts)
        self.rng = rng
        self.time_respecting = time_respecting
        self._edge_types_into: Dict[str, List[EdgeType]] = {
            node_type: graph.edge_types_into(node_type) for node_type in graph.node_types
        }

    @property
    def num_hops(self) -> int:
        """Sampling depth."""
        return len(self.fanouts)

    def sample(
        self,
        seed_type: str,
        seed_ids: np.ndarray,
        seed_times: np.ndarray,
    ) -> SampledSubgraph:
        """Sample the merged subgraph around the given seeds.

        ``seed_times`` gives the prediction time of each seed; every
        sampled node/edge satisfies ``timestamp <= seed time`` when
        ``time_respecting`` is on.
        """
        fault_point("sampler.sample")
        seed_ids = np.asarray(seed_ids, dtype=np.int64)
        seed_times = np.asarray(seed_times, dtype=np.int64)
        if seed_ids.shape != seed_times.shape:
            raise ValueError("seed_ids and seed_times must have the same shape")

        subgraph = SampledSubgraph(seed_type)
        frontier: List[Tuple[str, int, int, int]] = []  # (type, orig, ctx_time, local)
        seed_locals = np.empty(len(seed_ids), dtype=np.int64)
        for i, (orig, time) in enumerate(zip(seed_ids.tolist(), seed_times.tolist())):
            local, new = subgraph.add_node(seed_type, orig, time)
            seed_locals[i] = local
            if new:
                self._record_degrees(subgraph, seed_type, orig, time, local)
                frontier.append((seed_type, orig, time, local))
        subgraph.seed_locals = seed_locals

        truncations = 0
        for fanout in self.fanouts:
            next_frontier: List[Tuple[str, int, int, int]] = []
            for node_type, orig, ctx_time, local in frontier:
                for edge_type in self._edge_types_into[node_type]:
                    neighbors, truncated = self._sample_neighbors(edge_type, orig, ctx_time, fanout)
                    truncations += truncated
                    for nbr in neighbors:
                        nbr_local, new = subgraph.add_node(edge_type.src, int(nbr), ctx_time)
                        subgraph.add_edge(edge_type, nbr_local, local)
                        if new:
                            self._record_degrees(
                                subgraph, edge_type.src, int(nbr), ctx_time, nbr_local
                            )
                            next_frontier.append((edge_type.src, int(nbr), ctx_time, nbr_local))
            frontier = next_frontier
        if obs_trace.enabled():
            obs_trace.add_counter("sampler.calls")
            obs_trace.add_counter("sampler.seeds", len(seed_ids))
            obs_trace.add_counter("sampler.nodes_sampled", subgraph.total_nodes())
            obs_trace.add_counter("sampler.edges_sampled", subgraph.total_edges())
            obs_trace.add_counter("sampler.fanout_truncations", truncations)
        return subgraph.finalize()

    def _record_degrees(
        self, subgraph: SampledSubgraph, node_type: str, orig: int, ctx_time: int, local: int
    ) -> None:
        """Store the node's time-valid in-degree per incoming edge type."""
        incoming = self._edge_types_into[node_type]
        if not incoming:
            return
        if self.time_respecting:
            degrees = [float(self.graph.count_before(et, orig, ctx_time)) for et in incoming]
        else:
            degrees = [float(len(self.graph.all_neighbors(et, orig))) for et in incoming]
        subgraph.set_degrees(node_type, local, degrees)

    def _sample_neighbors(
        self, edge_type: EdgeType, dst: int, ctx_time: int, fanout: int
    ) -> Tuple[np.ndarray, bool]:
        """(sampled neighbors, whether the fanout cap truncated them)."""
        if self.time_respecting:
            candidates, _ = self.graph.neighbors_before(edge_type, dst, ctx_time)
        else:
            candidates = self.graph.all_neighbors(edge_type, dst)
        if len(candidates) <= fanout:
            return candidates, False
        picks = self.rng.choice(len(candidates), size=fanout, replace=False)
        return candidates[picks], True
