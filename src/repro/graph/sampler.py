"""Time-respecting neighbor sampling.

Given seed nodes with seed times, the sampler grows an L-hop sampled
subgraph in which every traversed edge and every reached node existed
at the seed's time.  This is the property that makes the compiled
pipeline leak-free: a model input at prediction time ``t`` can only see
the database as of ``t``.

Node *instances* in a sampled subgraph are keyed by
``(original node id, seed-context time)``: the same row sampled under
two different seed times is two instances, because its valid
neighborhood differs.  Within one batch, seeds usually share a few
distinct cutoff times, so deduplication keeps subgraphs compact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.hetero import EdgeType, HeteroGraph
from repro.obs import trace as obs_trace
from repro.resilience.faults import fault_point

__all__ = ["SampledSubgraph", "NeighborSampler"]


class SampledSubgraph:
    """The result of one sampling call.

    Attributes
    ----------
    seed_type:
        Node type of the seeds.
    seed_locals:
        Local indices (within ``seed_type``) of the seed instances, in
        the order the seeds were given.
    """

    def __init__(self, seed_type: str) -> None:
        self.seed_type = seed_type
        self.seed_locals: np.ndarray = np.empty(0, dtype=np.int64)
        self._orig: Dict[str, List[int]] = {}
        self._ctx_time: Dict[str, List[int]] = {}
        self._index: Dict[str, Dict[Tuple[int, int], int]] = {}
        self._edges: Dict[EdgeType, Tuple[List[int], List[int]]] = {}
        self._degrees: Dict[str, List[List[float]]] = {}

    # -- construction (used by the sampler) ----------------------------
    def add_node(self, node_type: str, orig_id: int, ctx_time: int) -> Tuple[int, bool]:
        """Intern a node instance; returns (local index, was-new)."""
        index = self._index.setdefault(node_type, {})
        key = (orig_id, ctx_time)
        local = index.get(key)
        if local is not None:
            return local, False
        local = len(index)
        index[key] = local
        self._orig.setdefault(node_type, []).append(orig_id)
        self._ctx_time.setdefault(node_type, []).append(ctx_time)
        return local, True

    def set_degrees(self, node_type: str, local: int, degrees: List[float]) -> None:
        """Record time-valid in-degrees (one per incoming edge type)."""
        rows = self._degrees.setdefault(node_type, [])
        if local != len(rows):
            raise ValueError("degrees must be recorded in node-creation order")
        rows.append(degrees)

    def add_edge(self, edge_type: EdgeType, src_local: int, dst_local: int) -> None:
        """Record one edge between local node instances."""
        src_list, dst_list = self._edges.setdefault(edge_type, ([], []))
        src_list.append(src_local)
        dst_list.append(dst_local)

    def add_edges(self, edge_type: EdgeType, src_locals, dst_locals) -> None:
        """Bulk variant of :meth:`add_edge` (sequences of local ids)."""
        src_list, dst_list = self._edges.setdefault(edge_type, ([], []))
        src_list.extend(int(s) for s in src_locals)
        dst_list.extend(int(d) for d in dst_locals)

    # -- read access (used by the model) -------------------------------
    @property
    def node_types(self) -> List[str]:
        """Node types present in the subgraph."""
        return list(self._orig)

    @property
    def edge_types(self) -> List[EdgeType]:
        """Edge types present in the subgraph."""
        return list(self._edges)

    def num_nodes(self, node_type: str) -> int:
        """Instances of one node type."""
        return len(self._orig.get(node_type, ()))

    def total_nodes(self) -> int:
        """Instances over all types."""
        return sum(len(v) for v in self._orig.values())

    def total_edges(self) -> int:
        """Edges over all types."""
        return sum(len(src) for src, _ in self._edges.values())

    def node_orig(self, node_type: str) -> np.ndarray:
        """Original (full-graph) node ids per instance."""
        return np.asarray(self._orig.get(node_type, []), dtype=np.int64)

    def node_ctx_time(self, node_type: str) -> np.ndarray:
        """Seed-context time per instance."""
        return np.asarray(self._ctx_time.get(node_type, []), dtype=np.int64)

    def edges_for(self, edge_type: EdgeType) -> Tuple[np.ndarray, np.ndarray]:
        """(src_local, dst_local) arrays for one edge type."""
        src, dst = self._edges.get(edge_type, ([], []))
        return np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)

    def node_degrees(self, node_type: str) -> np.ndarray:
        """Time-valid in-degrees per instance, shape (n, k).

        ``k`` is the number of edge types into ``node_type`` in the
        full graph, in :meth:`HeteroGraph.edge_types_into` order.
        Types with no incoming relations return shape (n, 0).
        """
        rows = self._degrees.get(node_type, [])
        if not rows:
            return np.zeros((self.num_nodes(node_type), 0))
        return np.asarray(rows, dtype=np.float64)


class NeighborSampler:
    """Samples L-hop time-respecting neighborhoods.

    Parameters
    ----------
    graph:
        The full heterogeneous graph.
    fanouts:
        Neighbors sampled per edge type at each hop; ``len(fanouts)``
        is the number of hops (use the model depth).
    rng:
        Random generator (sampling without replacement per neighbor
        list).
    time_respecting:
        When false, ignores timestamps entirely — the *leaky* variant
        used by the Figure 3 ablation.  Never use in production.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        fanouts: Sequence[int],
        rng: np.random.Generator,
        time_respecting: bool = True,
    ) -> None:
        if any(f <= 0 for f in fanouts):
            raise ValueError(f"fanouts must be positive, got {list(fanouts)}")
        self.graph = graph
        self.fanouts = list(fanouts)
        self.rng = rng
        self.time_respecting = time_respecting
        self._edge_types_into: Dict[str, List[EdgeType]] = {
            node_type: graph.edge_types_into(node_type) for node_type in graph.node_types
        }

    @property
    def num_hops(self) -> int:
        """Sampling depth."""
        return len(self.fanouts)

    def sample(
        self,
        seed_type: str,
        seed_ids: np.ndarray,
        seed_times: np.ndarray,
    ) -> SampledSubgraph:
        """Sample the merged subgraph around the given seeds.

        ``seed_times`` gives the prediction time of each seed; every
        sampled node/edge satisfies ``timestamp <= seed time`` when
        ``time_respecting`` is on.
        """
        fault_point("sampler.sample")
        seed_ids = np.asarray(seed_ids, dtype=np.int64)
        seed_times = np.asarray(seed_times, dtype=np.int64)
        if seed_ids.shape != seed_times.shape:
            raise ValueError("seed_ids and seed_times must have the same shape")

        subgraph = SampledSubgraph(seed_type)
        frontier: List[Tuple[str, int, int, int]] = []  # (type, orig, ctx_time, local)
        seed_locals = np.empty(len(seed_ids), dtype=np.int64)
        for i, (orig, time) in enumerate(zip(seed_ids.tolist(), seed_times.tolist())):
            local, new = subgraph.add_node(seed_type, orig, time)
            seed_locals[i] = local
            if new:
                self._record_degrees(subgraph, seed_type, orig, time, local)
                frontier.append((seed_type, orig, time, local))
        subgraph.seed_locals = seed_locals

        truncations = 0
        for fanout in self.fanouts:
            next_frontier: List[Tuple[str, int, int, int]] = []
            for node_type, orig, ctx_time, local in frontier:
                for edge_type in self._edge_types_into[node_type]:
                    neighbors, truncated = self._sample_neighbors(edge_type, orig, ctx_time, fanout)
                    truncations += truncated
                    for nbr in neighbors:
                        nbr_local, new = subgraph.add_node(edge_type.src, int(nbr), ctx_time)
                        subgraph.add_edge(edge_type, nbr_local, local)
                        if new:
                            self._record_degrees(
                                subgraph, edge_type.src, int(nbr), ctx_time, nbr_local
                            )
                            next_frontier.append((edge_type.src, int(nbr), ctx_time, nbr_local))
            frontier = next_frontier
        if obs_trace.enabled():
            obs_trace.add_counter("sampler.calls")
            obs_trace.add_counter("sampler.seeds", len(seed_ids))
            obs_trace.add_counter("sampler.nodes_sampled", subgraph.total_nodes())
            obs_trace.add_counter("sampler.edges_sampled", subgraph.total_edges())
            obs_trace.add_counter("sampler.fanout_truncations", truncations)
        return subgraph

    def _record_degrees(
        self, subgraph: SampledSubgraph, node_type: str, orig: int, ctx_time: int, local: int
    ) -> None:
        """Store the node's time-valid in-degree per incoming edge type."""
        incoming = self._edge_types_into[node_type]
        if not incoming:
            return
        if self.time_respecting:
            degrees = [float(self.graph.count_before(et, orig, ctx_time)) for et in incoming]
        else:
            degrees = [float(len(self.graph.all_neighbors(et, orig))) for et in incoming]
        subgraph.set_degrees(node_type, local, degrees)

    def _sample_neighbors(
        self, edge_type: EdgeType, dst: int, ctx_time: int, fanout: int
    ) -> Tuple[np.ndarray, bool]:
        """(sampled neighbors, whether the fanout cap truncated them)."""
        if self.time_respecting:
            candidates, _ = self.graph.neighbors_before(edge_type, dst, ctx_time)
        else:
            candidates = self.graph.all_neighbors(edge_type, dst)
        if len(candidates) <= fanout:
            return candidates, False
        picks = self.rng.choice(len(candidates), size=fanout, replace=False)
        return candidates[picks], True
