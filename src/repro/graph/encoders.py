"""Column encoders: table columns → model-ready node features.

Encoding rules (mirroring RelBench's default column transforms):

* INT64 / FLOAT64 — standardized numeric channel plus a null-indicator
  channel.  Standardization statistics are computed from rows at or
  before a ``stats_cutoff`` timestamp so no information from the
  evaluation horizon leaks into feature scaling.
* BOOL — a single 0/1 channel (nulls become 0 with indicator).
* STRING — categorical codes for an embedding table; values unseen
  before the cutoff (or beyond a cardinality cap) hash into overflow
  buckets.
* TIMESTAMP feature columns — age in days relative to the cutoff,
  standardized like numeric columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.relational.table import Table
from repro.relational.types import DType

__all__ = ["NodeFeatures", "CategoricalEncoding", "encode_table_features"]

#: Hash buckets reserved for unseen / overflow categorical values.
_OVERFLOW_BUCKETS = 8
#: Above this many distinct values a STRING column is hashed entirely.
_MAX_VOCAB = 256
_SECONDS_PER_DAY = 86400.0


@dataclass
class CategoricalEncoding:
    """One categorical column encoded as integer codes.

    ``codes`` holds per-row indices in ``[0, cardinality)``; the last
    ``_OVERFLOW_BUCKETS`` indices are shared hash buckets for unseen
    values, and index ``cardinality - _OVERFLOW_BUCKETS - 1`` is the
    dedicated null code.
    """

    name: str
    codes: np.ndarray
    cardinality: int
    vocabulary: Dict[str, int] = field(default_factory=dict)


@dataclass
class NodeFeatures:
    """Encoded features of one node type.

    ``numeric`` is an (n, d) float array (possibly d == 0),
    ``numeric_names`` labels its channels, and ``categorical`` lists the
    embedding-ready columns.
    """

    numeric: np.ndarray
    numeric_names: List[str]
    categorical: List[CategoricalEncoding]

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered."""
        return self.numeric.shape[0]

    @property
    def numeric_dim(self) -> int:
        """Width of the numeric block."""
        return self.numeric.shape[1]

    def take(self, indices: np.ndarray) -> "NodeFeatures":
        """Feature rows for a subset of nodes (used by sampled subgraphs)."""
        return NodeFeatures(
            numeric=self.numeric[indices],
            numeric_names=self.numeric_names,
            categorical=[
                CategoricalEncoding(
                    name=cat.name,
                    codes=cat.codes[indices],
                    cardinality=cat.cardinality,
                    vocabulary=cat.vocabulary,
                )
                for cat in self.categorical
            ],
        )


@lru_cache(maxsize=65536)
def _stable_hash(text: str) -> int:
    """Deterministic FNV-1a string hash (python's builtin is salted per process).

    Cached: encoding hashes each *distinct* value once, and the same
    vocabularies recur across snapshot cutoffs within a run.
    """
    value = 2166136261
    for char in text.encode("utf-8"):
        value = ((value ^ char) * 16777619) & 0xFFFFFFFF
    return value


def _fit_rows(table: Table, stats_cutoff: Optional[int]) -> np.ndarray:
    """Boolean mask of rows usable for fitting statistics (<= cutoff)."""
    time_col = table.schema.time_column
    if stats_cutoff is None or time_col is None:
        return np.ones(table.num_rows, dtype=bool)
    return table[time_col].less_equal(stats_cutoff)


def encode_table_features(
    table: Table,
    stats_cutoff: Optional[int] = None,
) -> NodeFeatures:
    """Encode the feature columns of ``table`` into :class:`NodeFeatures`.

    ``stats_cutoff`` bounds the rows used for fitting normalization and
    vocabularies (pass the train cutoff to avoid temporal leakage).
    """
    fit_mask = _fit_rows(table, stats_cutoff)
    numeric_channels: List[np.ndarray] = []
    numeric_names: List[str] = []
    categorical: List[CategoricalEncoding] = []

    for name in table.schema.feature_columns:
        column = table[name]
        if column.dtype in (DType.INT64, DType.FLOAT64):
            values, indicator = _encode_numeric(
                column.values.astype(np.float64), column.null_mask(), fit_mask
            )
            numeric_channels.extend([values, indicator])
            numeric_names.extend([name, f"{name}__isnull"])
        elif column.dtype == DType.BOOL:
            numeric_channels.append(
                np.where(column.null_mask(), 0.0, column.values.astype(np.float64))
            )
            numeric_names.append(name)
        elif column.dtype == DType.TIMESTAMP:
            reference = float(stats_cutoff) if stats_cutoff is not None else float(
                np.max(column.values[~column.null_mask()], initial=0)
            )
            age_days = (reference - column.values.astype(np.float64)) / _SECONDS_PER_DAY
            values, indicator = _encode_numeric(age_days, column.null_mask(), fit_mask)
            numeric_channels.extend([values, indicator])
            numeric_names.extend([f"{name}__age_days", f"{name}__isnull"])
        elif column.dtype == DType.STRING:
            categorical.append(_encode_categorical(name, column.values, column.null_mask(), fit_mask))
        else:  # pragma: no cover - exhaustive over DType
            raise TypeError(f"unsupported feature dtype {column.dtype}")

    if numeric_channels:
        numeric = np.column_stack(numeric_channels)
    else:
        numeric = np.zeros((table.num_rows, 0))
    return NodeFeatures(numeric=numeric, numeric_names=numeric_names, categorical=categorical)


def _encode_numeric(
    values: np.ndarray, null_mask: np.ndarray, fit_mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Standardize using fit-window statistics; nulls become 0 + indicator."""
    usable = fit_mask & ~null_mask
    if usable.any():
        mean = float(values[usable].mean())
        std = float(values[usable].std())
    else:
        mean, std = 0.0, 1.0
    if std < 1e-12:
        std = 1.0
    standardized = (values - mean) / std
    standardized = np.where(null_mask, 0.0, standardized)
    # Clip so outliers beyond the fit window cannot blow up activations.
    standardized = np.clip(standardized, -10.0, 10.0)
    return standardized, null_mask.astype(np.float64)


def _encode_categorical(
    name: str, values: np.ndarray, null_mask: np.ndarray, fit_mask: np.ndarray
) -> CategoricalEncoding:
    """Integer-code a string column with overflow hashing for unseen values.

    Vectorized: rows are uniqued once, each distinct string is coded
    (vocabulary lookup, else stable hash) exactly once, and per-row
    codes are a single gather instead of a python loop over rows.
    """
    usable = fit_mask & ~null_mask
    as_text = values.astype(str)
    seen = np.unique(as_text[usable]).tolist()
    if len(seen) > _MAX_VOCAB:
        # Hash everything: cardinality = _MAX_VOCAB + null + overflow.
        vocabulary: Dict[str, int] = {}
        base = _MAX_VOCAB
    else:
        vocabulary = {value: i for i, value in enumerate(seen)}
        base = len(seen)
    null_code = base
    overflow_start = base + 1
    cardinality = overflow_start + _OVERFLOW_BUCKETS

    uniq, inverse = np.unique(as_text, return_inverse=True)
    if vocabulary:
        unique_codes = np.array(
            [
                vocabulary[text]
                if text in vocabulary
                else overflow_start + _stable_hash(text) % _OVERFLOW_BUCKETS
                for text in map(str, uniq)
            ],
            dtype=np.int64,
        )
    else:
        unique_codes = np.array(
            [_stable_hash(str(text)) % _MAX_VOCAB for text in uniq], dtype=np.int64
        )
    codes = unique_codes[inverse]
    codes[null_mask] = null_code
    return CategoricalEncoding(
        name=name, codes=codes, cardinality=cardinality, vocabulary=vocabulary
    )
