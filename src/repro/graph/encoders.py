"""Column encoders: table columns → model-ready node features.

Encoding rules (mirroring RelBench's default column transforms):

* INT64 / FLOAT64 — standardized numeric channel plus a null-indicator
  channel.  Standardization statistics are computed from rows at or
  before a ``stats_cutoff`` timestamp so no information from the
  evaluation horizon leaks into feature scaling.
* BOOL — a single 0/1 channel (nulls become 0 with indicator).
* STRING — categorical codes for an embedding table; values unseen
  before the cutoff (or beyond a cardinality cap) hash into overflow
  buckets.
* TIMESTAMP feature columns — age in days relative to the cutoff,
  standardized like numeric columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.relational.table import Table
from repro.relational.types import DType

__all__ = [
    "NodeFeatures",
    "CategoricalEncoding",
    "encode_table_features",
    "FeatureGrower",
]

#: Hash buckets reserved for unseen / overflow categorical values.
_OVERFLOW_BUCKETS = 8
#: Above this many distinct values a STRING column is hashed entirely.
_MAX_VOCAB = 256
_SECONDS_PER_DAY = 86400.0


@dataclass
class CategoricalEncoding:
    """One categorical column encoded as integer codes.

    ``codes`` holds per-row indices in ``[0, cardinality)``; the last
    ``_OVERFLOW_BUCKETS`` indices are shared hash buckets for unseen
    values, and index ``cardinality - _OVERFLOW_BUCKETS - 1`` is the
    dedicated null code.
    """

    name: str
    codes: np.ndarray
    cardinality: int
    vocabulary: Dict[str, int] = field(default_factory=dict)


@dataclass
class NodeFeatures:
    """Encoded features of one node type.

    ``numeric`` is an (n, d) float array (possibly d == 0),
    ``numeric_names`` labels its channels, and ``categorical`` lists the
    embedding-ready columns.
    """

    numeric: np.ndarray
    numeric_names: List[str]
    categorical: List[CategoricalEncoding]

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered."""
        return self.numeric.shape[0]

    @property
    def numeric_dim(self) -> int:
        """Width of the numeric block."""
        return self.numeric.shape[1]

    def take(self, indices: np.ndarray) -> "NodeFeatures":
        """Feature rows for a subset of nodes (used by sampled subgraphs)."""
        return NodeFeatures(
            numeric=self.numeric[indices],
            numeric_names=self.numeric_names,
            categorical=[
                CategoricalEncoding(
                    name=cat.name,
                    codes=cat.codes[indices],
                    cardinality=cat.cardinality,
                    vocabulary=cat.vocabulary,
                )
                for cat in self.categorical
            ],
        )


@lru_cache(maxsize=65536)
def _stable_hash(text: str) -> int:
    """Deterministic FNV-1a string hash (python's builtin is salted per process).

    Cached: encoding hashes each *distinct* value once, and the same
    vocabularies recur across snapshot cutoffs within a run.
    """
    value = 2166136261
    for char in text.encode("utf-8"):
        value = ((value ^ char) * 16777619) & 0xFFFFFFFF
    return value


def _fit_rows(table: Table, stats_cutoff: Optional[int]) -> np.ndarray:
    """Boolean mask of rows usable for fitting statistics (<= cutoff)."""
    time_col = table.schema.time_column
    if stats_cutoff is None or time_col is None:
        return np.ones(table.num_rows, dtype=bool)
    return table[time_col].less_equal(stats_cutoff)


def encode_table_features(
    table: Table,
    stats_cutoff: Optional[int] = None,
) -> NodeFeatures:
    """Encode the feature columns of ``table`` into :class:`NodeFeatures`.

    ``stats_cutoff`` bounds the rows used for fitting normalization and
    vocabularies (pass the train cutoff to avoid temporal leakage).
    """
    fit_mask = _fit_rows(table, stats_cutoff)
    numeric_channels: List[np.ndarray] = []
    numeric_names: List[str] = []
    categorical: List[CategoricalEncoding] = []

    for name in table.schema.feature_columns:
        column = table[name]
        if column.dtype in (DType.INT64, DType.FLOAT64):
            values, indicator = _encode_numeric(
                column.values.astype(np.float64), column.null_mask(), fit_mask
            )
            numeric_channels.extend([values, indicator])
            numeric_names.extend([name, f"{name}__isnull"])
        elif column.dtype == DType.BOOL:
            numeric_channels.append(
                np.where(column.null_mask(), 0.0, column.values.astype(np.float64))
            )
            numeric_names.append(name)
        elif column.dtype == DType.TIMESTAMP:
            reference = float(stats_cutoff) if stats_cutoff is not None else float(
                np.max(column.values[~column.null_mask()], initial=0)
            )
            age_days = (reference - column.values.astype(np.float64)) / _SECONDS_PER_DAY
            values, indicator = _encode_numeric(age_days, column.null_mask(), fit_mask)
            numeric_channels.extend([values, indicator])
            numeric_names.extend([f"{name}__age_days", f"{name}__isnull"])
        elif column.dtype == DType.STRING:
            categorical.append(_encode_categorical(name, column.values, column.null_mask(), fit_mask))
        else:  # pragma: no cover - exhaustive over DType
            raise TypeError(f"unsupported feature dtype {column.dtype}")

    if numeric_channels:
        numeric = np.column_stack(numeric_channels)
    else:
        numeric = np.zeros((table.num_rows, 0))
    return NodeFeatures(numeric=numeric, numeric_names=numeric_names, categorical=categorical)


def _encode_numeric(
    values: np.ndarray, null_mask: np.ndarray, fit_mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Standardize using fit-window statistics; nulls become 0 + indicator."""
    usable = fit_mask & ~null_mask
    if usable.any():
        mean = float(values[usable].mean())
        std = float(values[usable].std())
    else:
        mean, std = 0.0, 1.0
    if std < 1e-12:
        std = 1.0
    standardized = (values - mean) / std
    standardized = np.where(null_mask, 0.0, standardized)
    # Clip so outliers beyond the fit window cannot blow up activations.
    standardized = np.clip(standardized, -10.0, 10.0)
    return standardized, null_mask.astype(np.float64)


class FeatureGrower:
    """Incrementally extend :class:`NodeFeatures` as table rows append.

    The ingest delta path needs feature blocks that stay bit-identical
    to a cold ``encode_table_features`` over the grown table.  That is
    provable when every appended row's timestamp lies strictly after
    ``stats_cutoff``: the fit window (rows ``<= cutoff``) — and with it
    every mean, std, and vocabulary — is frozen, and the per-row
    transforms are elementwise, so encoding just the new slice with the
    frozen statistics reproduces the cold bytes.  Fit-window statistics
    are memoized per (table, channel) so repeated deltas skip the
    full-column scans.

    Whenever the fast path cannot be proven (no cutoff, a static
    table, or an appended row at/before the cutoff), :meth:`grow`
    falls back to a full re-encode — still cold-identical, just not
    incremental — and drops the table's memoized statistics, since the
    fit window may have changed.
    """

    def __init__(self, stats_cutoff: Optional[int]) -> None:
        self.stats_cutoff = stats_cutoff
        self._stats: Dict[Tuple[str, str], Tuple[float, float]] = {}

    def _numeric_stats(
        self, table_name: str, channel: str, values: np.ndarray, usable: np.ndarray
    ) -> Tuple[float, float]:
        key = (table_name, channel)
        cached = self._stats.get(key)
        if cached is not None:
            return cached
        if usable.any():
            mean = float(values[usable].mean())
            std = float(values[usable].std())
        else:
            mean, std = 0.0, 1.0
        if std < 1e-12:
            std = 1.0
        self._stats[key] = (mean, std)
        return mean, std

    def _grow_numeric(
        self,
        table_name: str,
        channel: str,
        values: np.ndarray,
        null_mask: np.ndarray,
        fit_mask: np.ndarray,
        rows: slice,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``_encode_numeric`` restricted to ``rows``, stats frozen."""
        mean, std = self._numeric_stats(
            table_name, channel, values, fit_mask & ~null_mask
        )
        new_null = null_mask[rows]
        standardized = (values[rows] - mean) / std
        standardized = np.where(new_null, 0.0, standardized)
        standardized = np.clip(standardized, -10.0, 10.0)
        return standardized, new_null.astype(np.float64)

    @staticmethod
    def _grow_categorical(
        base: CategoricalEncoding, values: np.ndarray, null_mask: np.ndarray, rows: slice
    ) -> np.ndarray:
        """Codes for the new rows under the frozen vocabulary.

        Mirrors both cold branches of ``_encode_categorical``: a stored
        vocabulary maps hits directly and hashes misses into the
        overflow buckets; an empty vocabulary (the hashed-all branch —
        which cold also takes for a column with *zero* fit-window
        values) hashes into ``_MAX_VOCAB`` buckets.
        """
        null_code = base.cardinality - 1 - _OVERFLOW_BUCKETS
        overflow_start = null_code + 1
        as_text = values[rows].astype(str)
        new_null = null_mask[rows]
        uniq, inverse = np.unique(as_text, return_inverse=True)
        if base.vocabulary:
            unique_codes = np.array(
                [
                    base.vocabulary[text]
                    if text in base.vocabulary
                    else overflow_start + _stable_hash(text) % _OVERFLOW_BUCKETS
                    for text in map(str, uniq)
                ],
                dtype=np.int64,
            )
        else:
            unique_codes = np.array(
                [_stable_hash(str(text)) % _MAX_VOCAB for text in uniq], dtype=np.int64
            )
        codes = unique_codes[inverse] if len(as_text) else np.zeros(0, dtype=np.int64)
        codes[new_null] = null_code
        return codes

    def grow(self, table: Table, base: NodeFeatures) -> NodeFeatures:
        """Features for the grown ``table``, extending ``base``.

        ``base`` must be the encoding of the table's first
        ``base.num_nodes`` rows at the same ``stats_cutoff``.
        """
        old = base.num_nodes
        if table.num_rows < old:
            raise ValueError(
                f"table {table.name!r} shrank: {table.num_rows} < {old} encoded rows"
            )
        if table.num_rows == old:
            return base
        time_col = table.schema.time_column
        fast = self.stats_cutoff is not None and time_col is not None
        if fast:
            col = table[time_col]
            new_null = col.null_mask()[old:]
            new_times = col.values[old:]
            if new_null.any() or bool((new_times <= self.stats_cutoff).any()):
                fast = False
        if not fast:
            self._stats = {
                k: v for k, v in self._stats.items() if k[0] != table.name
            }
            return encode_table_features(table, self.stats_cutoff)

        rows = slice(old, table.num_rows)
        fit_mask = _fit_rows(table, self.stats_cutoff)
        numeric_channels: List[np.ndarray] = []
        categorical: List[CategoricalEncoding] = []
        cat_index = 0
        for name in table.schema.feature_columns:
            column = table[name]
            if column.dtype in (DType.INT64, DType.FLOAT64):
                values, indicator = self._grow_numeric(
                    table.name, name, column.values.astype(np.float64),
                    column.null_mask(), fit_mask, rows,
                )
                numeric_channels.extend([values, indicator])
            elif column.dtype == DType.BOOL:
                null = column.null_mask()[rows]
                numeric_channels.append(
                    np.where(null, 0.0, column.values[rows].astype(np.float64))
                )
            elif column.dtype == DType.TIMESTAMP:
                reference = float(self.stats_cutoff)
                age_days = (
                    reference - column.values.astype(np.float64)
                ) / _SECONDS_PER_DAY
                values, indicator = self._grow_numeric(
                    table.name, f"{name}__age_days", age_days,
                    column.null_mask(), fit_mask, rows,
                )
                numeric_channels.extend([values, indicator])
            elif column.dtype == DType.STRING:
                old_cat = base.categorical[cat_index]
                cat_index += 1
                new_codes = self._grow_categorical(
                    old_cat, column.values, column.null_mask(), rows
                )
                categorical.append(
                    CategoricalEncoding(
                        name=name,
                        codes=np.concatenate([old_cat.codes, new_codes]),
                        cardinality=old_cat.cardinality,
                        vocabulary=old_cat.vocabulary,
                    )
                )
            else:  # pragma: no cover - exhaustive over DType
                raise TypeError(f"unsupported feature dtype {column.dtype}")

        if numeric_channels:
            new_block = np.column_stack(numeric_channels)
            numeric = np.concatenate([base.numeric, new_block], axis=0)
        else:
            numeric = np.zeros((table.num_rows, 0))
        return NodeFeatures(
            numeric=numeric, numeric_names=base.numeric_names, categorical=categorical
        )


def _encode_categorical(
    name: str, values: np.ndarray, null_mask: np.ndarray, fit_mask: np.ndarray
) -> CategoricalEncoding:
    """Integer-code a string column with overflow hashing for unseen values.

    Vectorized: rows are uniqued once, each distinct string is coded
    (vocabulary lookup, else stable hash) exactly once, and per-row
    codes are a single gather instead of a python loop over rows.
    """
    usable = fit_mask & ~null_mask
    as_text = values.astype(str)
    seen = np.unique(as_text[usable]).tolist()
    if len(seen) > _MAX_VOCAB:
        # Hash everything: cardinality = _MAX_VOCAB + null + overflow.
        vocabulary: Dict[str, int] = {}
        base = _MAX_VOCAB
    else:
        vocabulary = {value: i for i, value in enumerate(seen)}
        base = len(seen)
    null_code = base
    overflow_start = base + 1
    cardinality = overflow_start + _OVERFLOW_BUCKETS

    uniq, inverse = np.unique(as_text, return_inverse=True)
    if vocabulary:
        unique_codes = np.array(
            [
                vocabulary[text]
                if text in vocabulary
                else overflow_start + _stable_hash(text) % _OVERFLOW_BUCKETS
                for text in map(str, uniq)
            ],
            dtype=np.int64,
        )
    else:
        unique_codes = np.array(
            [_stable_hash(str(text)) % _MAX_VOCAB for text in uniq], dtype=np.int64
        )
    codes = unique_codes[inverse]
    codes[null_mask] = null_code
    return CategoricalEncoding(
        name=name, codes=codes, cardinality=cardinality, vocabulary=vocabulary
    )
