"""The DB→graph compiler: rows become nodes, foreign keys become edges.

This is the paper's central construction.  For a database ``db``:

* every table ``T`` becomes a node type ``T`` with one node per row
  (node index = row position, original primary key kept for lookups);
* every foreign key ``T.c -> R.pk`` becomes an edge type
  ``(T, c, R)`` plus its reverse ``(R, rev_c, T)``;
* every edge inherits the timestamp of the *referencing* (child) row,
  so a time-respecting walk can never traverse an edge that did not
  exist at seed time;
* feature columns are encoded via
  :func:`repro.graph.encoders.encode_table_features` with statistics
  fitted at or before ``stats_cutoff``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graph.encoders import encode_table_features
from repro.graph.hetero import EdgeType, HeteroGraph, TIME_MIN
from repro.relational.database import Database

__all__ = ["build_graph", "node_index_for_keys"]


def build_graph(
    db: Database,
    stats_cutoff: Optional[int] = None,
    encode_features: bool = True,
) -> HeteroGraph:
    """Compile ``db`` into a :class:`~repro.graph.hetero.HeteroGraph`.

    Parameters
    ----------
    db:
        The relational database (should pass ``db.validate()``).
    stats_cutoff:
        Timestamp bounding the rows used to fit feature-normalization
        statistics and categorical vocabularies.  Pass the training
        cutoff to keep the pipeline leak-free end-to-end.
    encode_features:
        Set false to skip feature encoding (cheaper for pure
        graph-topology benchmarks).
    """
    graph = HeteroGraph()
    key_to_index: Dict[str, Dict[object, int]] = {}

    for table in db:
        time_col = table.schema.time_column
        times = None
        if time_col is not None:
            raw = table[time_col]
            times = np.where(raw.null_mask(), TIME_MIN, raw.values.astype(np.int64))
        graph.add_node_type(table.name, table.num_rows, times=times)
        pk = table.schema.primary_key
        if pk is not None:
            keys = table[pk].values
            graph.node_keys[table.name] = keys
            key_to_index[table.name] = {key: i for i, key in enumerate(keys.tolist())}
        if encode_features:
            graph.features[table.name] = encode_table_features(table, stats_cutoff=stats_cutoff)

    for table in db:
        child_times = None
        if table.schema.time_column is not None:
            raw = table[table.schema.time_column]
            child_times = np.where(raw.null_mask(), TIME_MIN, raw.values.astype(np.int64))
        for fk in table.schema.foreign_keys:
            mapping = key_to_index.get(fk.ref_table)
            if mapping is None:
                raise ValueError(
                    f"foreign key {table.name}.{fk.column} references table "
                    f"{fk.ref_table!r} which has no primary key"
                )
            column = table[fk.column]
            valid = ~column.null_mask()
            child_rows = np.flatnonzero(valid)
            parent_rows = np.fromiter(
                (mapping[key] for key in column.values[child_rows].tolist()),
                dtype=np.int64,
                count=len(child_rows),
            )
            edge_times = (
                child_times[child_rows]
                if child_times is not None
                else np.full(len(child_rows), TIME_MIN, dtype=np.int64)
            )
            forward = EdgeType(table.name, fk.column, fk.ref_table)
            graph.add_edge_type(forward, child_rows, parent_rows, times=edge_times)
            graph.add_edge_type(forward.reverse(), parent_rows, child_rows, times=edge_times)

    return graph


def node_index_for_keys(graph: HeteroGraph, node_type: str, keys: np.ndarray) -> np.ndarray:
    """Map primary-key values to node indices for ``node_type``.

    Raises ``KeyError`` if any key is unknown.
    """
    table_keys = graph.node_keys.get(node_type)
    if table_keys is None:
        raise KeyError(f"node type {node_type!r} has no primary-key index")
    mapping = {key: i for i, key in enumerate(table_keys.tolist())}
    out = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(np.asarray(keys).tolist()):
        if key not in mapping:
            raise KeyError(f"unknown {node_type} key: {key!r}")
        out[i] = mapping[key]
    return out
