"""Shared-memory CSR graph store for zero-copy parallel sampling.

:class:`SharedGraphStore` packs every numeric column of a
:class:`~repro.graph.hetero.HeteroGraph` — per edge type the
``indptr``/``nbr_src``/``nbr_time`` CSR arrays, per node type the
timestamps, numeric feature matrix, categorical code columns, and
(numeric) primary keys — into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment, plus a
small picklable *manifest* of offsets and metadata.  Forked sampler
workers inherit the mapping and materialize a read-only
:class:`HeteroGraph` view whose arrays alias the segment directly: no
copy of the graph is ever made per worker, and sampling results travel
back as compact index arrays rather than pickled object graphs.

Segment lifecycle
-----------------

* ``create(graph)`` allocates and fills the segment in the parent; the
  creating process *owns* it.
* Forked workers reuse the inherited mapping; under a spawn start
  method (or explicit pickling) the store re-attaches by name.
* ``close()`` drops the view arrays and unmaps; ``unlink()`` removes
  the segment from ``/dev/shm``.  Both are idempotent.
* Cleanup is defense-in-depth: the owner unlinks explicitly (the
  parallel loader does this in ``close()``), an ``atexit`` hook covers
  forgotten stores on normal interpreter exit, and the
  :mod:`multiprocessing.resource_tracker` registration made at create
  time removes the segment even after a parent ``kill -9``.

Segments are named ``repro_shm_<pid>_<token>`` so test harnesses (and
operators) can audit ``/dev/shm`` for leaks with
:func:`list_shared_segments`.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.cache import graph_fingerprint
from repro.graph.encoders import CategoricalEncoding, NodeFeatures
from repro.graph.hetero import EdgeType, HeteroGraph, _EdgeStore

__all__ = ["SharedGraphStore", "list_shared_segments", "SEGMENT_PREFIX"]

#: Prefix of every segment this module creates; leak probes filter on it.
SEGMENT_PREFIX = "repro_shm_"

#: Byte alignment of each packed array within the segment.
_ALIGN = 64

_SHM_DIR = Path("/dev/shm")


def list_shared_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live shared-memory segments created by this module.

    Reads ``/dev/shm`` directly (empty list on platforms without it),
    so chaos tests can assert that no segment survives a crash.
    """
    if not _SHM_DIR.is_dir():
        return []
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(prefix))


class _Packer:
    """Assigns aligned offsets and records array metadata."""

    def __init__(self) -> None:
        self.cursor = 0
        self.entries: List[Tuple[int, np.ndarray]] = []

    def ref(self, array: np.ndarray) -> Dict[str, object]:
        array = np.ascontiguousarray(array)
        if array.dtype.kind not in "iufb":
            raise TypeError(f"cannot pack non-numeric dtype {array.dtype}")
        if array.nbytes == 0:
            # Zero-size arrays carry no bytes; give them offset 0 so
            # the view never reaches past the buffer end.
            offset = 0
        else:
            offset = -(-self.cursor // _ALIGN) * _ALIGN
            self.cursor = offset + array.nbytes
        self.entries.append((offset, array))
        return {"offset": offset, "shape": tuple(array.shape), "dtype": array.dtype.str}


def _build_manifest(graph: HeteroGraph, packer: _Packer) -> Dict[str, object]:
    manifest: Dict[str, object] = {
        "fingerprint": graph_fingerprint(graph),
        "num_nodes": {nt: graph.num_nodes(nt) for nt in graph.node_types},
        "node_times": {nt: packer.ref(graph.node_times(nt)) for nt in graph.node_types},
        "edge_csr": {},
        "features": {},
        "node_keys": {},
    }
    for edge_type in graph.edge_types:
        store = graph._edges[edge_type]
        manifest["edge_csr"][(edge_type.src, edge_type.rel, edge_type.dst)] = (
            packer.ref(store.indptr),
            packer.ref(store.nbr_src),
            packer.ref(store.nbr_time),
        )
    for node_type, feats in graph.features.items():
        manifest["features"][node_type] = {
            "numeric": packer.ref(feats.numeric),
            "numeric_names": list(feats.numeric_names),
            "categorical": [
                {
                    "name": cat.name,
                    "codes": packer.ref(cat.codes),
                    "cardinality": cat.cardinality,
                    "vocabulary": dict(cat.vocabulary),
                }
                for cat in feats.categorical
            ],
        }
    for node_type, keys in graph.node_keys.items():
        keys = np.asarray(keys)
        if keys.dtype.kind in "iufb":
            manifest["node_keys"][node_type] = ("packed", packer.ref(keys))
        else:
            # Strings/objects don't pack into a flat buffer; they are
            # tiny relative to the CSR arrays, so ship them by value.
            manifest["node_keys"][node_type] = (
                "inline",
                keys.tolist(),
                keys.dtype.str,
            )
    return manifest


class SharedGraphStore:
    """A HeteroGraph serialized into one shared-memory segment.

    See the module docstring for layout and lifecycle.  Instances are
    cheap to pass to forked workers (the mapping is inherited) and
    pickle down to the manifest, re-attaching by segment name on
    deserialization.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: Dict[str, object],
        owner: bool,
    ) -> None:
        self._shm = shm
        self._manifest = manifest
        self._owner = owner
        self._owner_pid = os.getpid()
        self._graph: Optional[HeteroGraph] = None
        self._closed = False
        self._unlinked = False
        atexit.register(self._atexit_cleanup)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, graph: HeteroGraph, name: Optional[str] = None) -> "SharedGraphStore":
        """Pack ``graph`` into a fresh segment owned by this process."""
        packer = _Packer()
        manifest = _build_manifest(graph, packer)
        size = max(packer.cursor, 1)
        if name is None:
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        try:
            for offset, array in packer.entries:
                if array.nbytes == 0:
                    continue
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
                )
                view[...] = array
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        manifest["name"] = shm.name
        manifest["size"] = size
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: Dict[str, object]) -> "SharedGraphStore":
        """Attach to an existing segment described by ``manifest``."""
        shm = shared_memory.SharedMemory(name=manifest["name"])
        return cls(shm, manifest, owner=False)

    def __reduce__(self):
        # Under a spawn start method the manifest travels and the
        # receiving process re-attaches by name; forked workers never
        # take this path (they inherit the object).
        return (SharedGraphStore.attach, (self._manifest,))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Segment name (the file name under ``/dev/shm``)."""
        return self._manifest["name"]

    @property
    def size(self) -> int:
        """Segment size in bytes."""
        return self._manifest["size"]

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the packed graph (see cache module)."""
        return self._manifest["fingerprint"]

    @property
    def is_owner(self) -> bool:
        """Whether this store created (and must unlink) the segment."""
        return self._owner

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _view(self, ref: Dict[str, object]) -> np.ndarray:
        array = np.ndarray(
            ref["shape"],
            dtype=np.dtype(ref["dtype"]),
            buffer=self._shm.buf,
            offset=ref["offset"],
        )
        array.flags.writeable = False
        return array

    def graph(self) -> HeteroGraph:
        """The zero-copy :class:`HeteroGraph` view over the segment.

        Arrays alias shared memory and are marked read-only; the view
        (including its precomputed content fingerprint) is cached, so
        repeated calls are free.  Call sites must drop references to
        the view and its arrays before :meth:`close` can unmap.
        """
        if self._closed:
            raise ValueError("shared graph store is closed")
        if self._graph is not None:
            return self._graph
        m = self._manifest
        node_times = {nt: self._view(ref) for nt, ref in m["node_times"].items()}
        edge_stores = {
            EdgeType(*key): _EdgeStore.from_csr(
                self._view(indptr), self._view(nbr_src), self._view(nbr_time)
            )
            for key, (indptr, nbr_src, nbr_time) in m["edge_csr"].items()
        }
        features = {
            nt: NodeFeatures(
                numeric=self._view(spec["numeric"]),
                numeric_names=list(spec["numeric_names"]),
                categorical=[
                    CategoricalEncoding(
                        name=cat["name"],
                        codes=self._view(cat["codes"]),
                        cardinality=cat["cardinality"],
                        vocabulary=cat["vocabulary"],
                    )
                    for cat in spec["categorical"]
                ],
            )
            for nt, spec in m["features"].items()
        }
        node_keys = {}
        for nt, packed in m["node_keys"].items():
            if packed[0] == "packed":
                node_keys[nt] = self._view(packed[1])
            else:
                _, values, dtype_str = packed
                node_keys[nt] = np.asarray(values, dtype=np.dtype(dtype_str))
        graph = HeteroGraph.from_parts(
            num_nodes=m["num_nodes"],
            node_times=node_times,
            edge_stores=edge_stores,
            features=features,
            node_keys=node_keys,
        )
        # Seed the memoized fingerprint so content-keyed RNG draws over
        # the view are bit-identical to draws over the source graph.
        graph._fingerprint = m["fingerprint"]
        self._graph = graph
        return graph

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the view and unmap the segment (idempotent).

        If numpy views into the buffer are still referenced elsewhere,
        the unmap is skipped (unlinking still works; the OS frees the
        memory once the last mapping dies).
        """
        if self._closed:
            return
        self._graph = None
        try:
            self._shm.close()
        except BufferError:
            # Outstanding exported views keep the mapping alive; the
            # segment is still unlinkable and dies with the process.
            return
        self._closed = True

    def unlink(self) -> None:
        """Remove the segment from the filesystem (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        atexit.unregister(self._atexit_cleanup)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def cleanup(self) -> None:
        """Close, and unlink when this store owns the segment."""
        self.close()
        if self._owner:
            self.unlink()

    def _atexit_cleanup(self) -> None:
        # Guard on the pid: forked children inherit this registration
        # (and the owner flag) but must never unlink the parent's
        # segment.
        if os.getpid() == self._owner_pid:
            self.cleanup()
