"""The heterogeneous temporal graph data structure.

A :class:`HeteroGraph` holds, per node type, a node count, per-node
timestamps, and encoded features; and per edge type, the edge list plus
a CSR index keyed by *destination* node whose neighbor lists are sorted
by edge timestamp.  The time-sorted CSR is what makes time-respecting
neighbor sampling a binary search instead of a filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["EdgeType", "HeteroGraph", "TIME_MIN"]

#: Timestamp assigned to static (non-temporal) nodes and edges; it
#: compares below every real timestamp so static entities are visible
#: at any seed time.
TIME_MIN = np.iinfo(np.int64).min


@dataclass(frozen=True)
class EdgeType:
    """An edge type ``src --rel--> dst``.

    ``rel`` is unique per (src, dst) pair in practice because it is
    derived from the foreign-key column name.
    """

    src: str
    rel: str
    dst: str

    def reverse(self) -> "EdgeType":
        """The reversed edge type (rel gains/loses a ``rev_`` prefix)."""
        if self.rel.startswith("rev_"):
            return EdgeType(self.dst, self.rel[4:], self.src)
        return EdgeType(self.dst, f"rev_{self.rel}", self.src)

    def __str__(self) -> str:
        return f"{self.src}--{self.rel}-->{self.dst}"


class _EdgeStore:
    """Edge list plus dst-keyed CSR with time-sorted neighbor lists.

    A store built from raw edge arrays keeps the original (unsorted)
    ``src_ids``/``dst_ids``/``times``; one restored from a serialized
    CSR layout (:meth:`from_csr`, used by the shared-memory graph
    store) holds only the CSR arrays and reconstructs edge lists on
    demand in CSR order.
    """

    __slots__ = ("src_ids", "dst_ids", "times", "indptr", "nbr_src", "nbr_time")

    def __init__(
        self,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        times: np.ndarray,
        num_dst: int,
    ) -> None:
        self.src_ids = np.asarray(src_ids, dtype=np.int64)
        self.dst_ids = np.asarray(dst_ids, dtype=np.int64)
        self.times = np.asarray(times, dtype=np.int64)
        if not (len(self.src_ids) == len(self.dst_ids) == len(self.times)):
            raise ValueError("src/dst/time arrays must have equal length")
        # CSR keyed by dst, neighbors sorted by (dst, time).
        order = np.lexsort((self.times, self.dst_ids))
        sorted_dst = self.dst_ids[order]
        self.nbr_src = self.src_ids[order]
        self.nbr_time = self.times[order]
        counts = np.bincount(sorted_dst, minlength=num_dst)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    @classmethod
    def from_csr(
        cls, indptr: np.ndarray, nbr_src: np.ndarray, nbr_time: np.ndarray
    ) -> "_EdgeStore":
        """Wrap existing CSR arrays without copying or re-sorting.

        The arrays are used as-is (they may be read-only views into a
        shared-memory segment); ``nbr_time`` must already be ascending
        within each destination's segment, as produced by the primary
        constructor.
        """
        store = cls.__new__(cls)
        store.indptr = indptr
        store.nbr_src = nbr_src
        store.nbr_time = nbr_time
        if len(indptr) == 0 or int(indptr[-1]) != len(nbr_src) or len(nbr_src) != len(nbr_time):
            raise ValueError("inconsistent CSR arrays")
        store.src_ids = None
        store.dst_ids = None
        store.times = None
        return store

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw (src, dst, time) arrays.

        For CSR-restored stores the original insertion order is gone;
        the arrays come back in CSR (dst-major, time-ascending) order —
        the same multiset of edges.
        """
        if self.src_ids is not None:
            return self.src_ids, self.dst_ids, self.times
        dst = np.repeat(
            np.arange(len(self.indptr) - 1, dtype=np.int64), np.diff(self.indptr)
        )
        return self.nbr_src, dst, self.nbr_time

    @property
    def num_edges(self) -> int:
        return len(self.nbr_src)

    def neighbors_before(self, dst: int, time: int) -> Tuple[np.ndarray, np.ndarray]:
        """Incoming neighbors of ``dst`` with edge time <= ``time``.

        Returns (source ids, edge times); both may be empty.
        """
        start, stop = self.indptr[dst], self.indptr[dst + 1]
        times = self.nbr_time[start:stop]
        # Neighbor list is time-ascending: the valid ones are a prefix.
        valid = int(np.searchsorted(times, time, side="right"))
        return self.nbr_src[start : start + valid], times[:valid]

    def all_neighbors(self, dst: int) -> np.ndarray:
        """All incoming neighbors of ``dst`` regardless of time."""
        start, stop = self.indptr[dst], self.indptr[dst + 1]
        return self.nbr_src[start:stop]

    def count_before(self, dst: int, time: int) -> int:
        """Number of incoming neighbors of ``dst`` with edge time <= ``time``."""
        start, stop = self.indptr[dst], self.indptr[dst + 1]
        return int(np.searchsorted(self.nbr_time[start:stop], time, side="right"))

    def degree(self) -> np.ndarray:
        """In-degree per destination node."""
        return np.diff(self.indptr)

    def merged(
        self,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        times: np.ndarray,
        num_dst: int,
    ) -> "_EdgeStore":
        """A new store holding this store's edges plus a delta batch.

        Bit-identical to rebuilding from scratch over the concatenated
        raw edge list: the primary constructor's ``lexsort`` is stable,
        so base rows precede delta rows within any equal ``(dst, time)``
        group — which is exactly what inserting each delta edge *after*
        the base edges with time ``<= t`` (``searchsorted`` side
        ``"right"``) reproduces, at the cost of the delta instead of
        the whole edge list.  ``num_dst`` is the (possibly grown)
        destination node count.
        """
        d_src = np.asarray(src_ids, dtype=np.int64)
        d_dst = np.asarray(dst_ids, dtype=np.int64)
        d_times = np.asarray(times, dtype=np.int64)
        order = np.lexsort((d_times, d_dst))
        s_src, s_dst, s_times = d_src[order], d_dst[order], d_times[order]
        old_num_dst = len(self.indptr) - 1
        positions = np.full(len(s_dst), self.indptr[-1], dtype=np.int64)
        in_range = s_dst < old_num_dst
        for d in np.unique(s_dst[in_range]):
            rows = np.flatnonzero(s_dst == d)
            start, stop = self.indptr[d], self.indptr[d + 1]
            segment = self.nbr_time[start:stop]
            positions[rows] = start + np.searchsorted(segment, s_times[rows], side="right")
        old_counts = np.diff(self.indptr)
        if num_dst > old_num_dst:
            old_counts = np.concatenate(
                [old_counts, np.zeros(num_dst - old_num_dst, dtype=np.int64)]
            )
        counts = old_counts + np.bincount(d_dst, minlength=num_dst)
        store = _EdgeStore.__new__(_EdgeStore)
        store.nbr_src = np.insert(self.nbr_src, positions, s_src)
        store.nbr_time = np.insert(self.nbr_time, positions, s_times)
        store.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        if self.src_ids is not None:
            # Raw arrays keep event order (base rows then delta rows),
            # mirroring how a cold build consumes appended table rows.
            store.src_ids = np.concatenate([self.src_ids, d_src])
            store.dst_ids = np.concatenate([self.dst_ids, d_dst])
            store.times = np.concatenate([self.times, d_times])
        else:
            store.src_ids = None
            store.dst_ids = None
            store.times = None
        return store


class HeteroGraph:
    """A heterogeneous graph with per-node and per-edge timestamps."""

    def __init__(self) -> None:
        self._num_nodes: Dict[str, int] = {}
        self._node_times: Dict[str, np.ndarray] = {}
        self._edges: Dict[EdgeType, _EdgeStore] = {}
        #: per node type, the encoded features (set by the builder).
        self.features: Dict[str, "NodeFeatures"] = {}
        #: per node type, original primary-key value per node index.
        self.node_keys: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node_type(
        self,
        name: str,
        num_nodes: int,
        times: Optional[np.ndarray] = None,
    ) -> None:
        """Register ``num_nodes`` nodes of type ``name``.

        ``times`` gives per-node creation timestamps; omitted means the
        nodes are static (always visible).
        """
        if name in self._num_nodes:
            raise ValueError(f"node type {name!r} already exists")
        if times is None:
            times = np.full(num_nodes, TIME_MIN, dtype=np.int64)
        times = np.asarray(times, dtype=np.int64)
        if times.shape != (num_nodes,):
            raise ValueError(f"times shape {times.shape} != ({num_nodes},)")
        self._num_nodes[name] = num_nodes
        self._node_times[name] = times

    def add_edge_type(
        self,
        edge_type: EdgeType,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        times: Optional[np.ndarray] = None,
    ) -> None:
        """Add all edges of ``edge_type`` at once.

        ``times`` stamps each edge; omitted means static edges.
        """
        for endpoint, role in ((edge_type.src, "src"), (edge_type.dst, "dst")):
            if endpoint not in self._num_nodes:
                raise KeyError(f"edge type {edge_type}: unknown {role} node type {endpoint!r}")
        if edge_type in self._edges:
            raise ValueError(f"edge type {edge_type} already exists")
        src_ids = np.asarray(src_ids, dtype=np.int64)
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if times is None:
            times = np.full(len(src_ids), TIME_MIN, dtype=np.int64)
        if len(src_ids) and (
            src_ids.min() < 0
            or src_ids.max() >= self._num_nodes[edge_type.src]
            or dst_ids.min() < 0
            or dst_ids.max() >= self._num_nodes[edge_type.dst]
        ):
            raise IndexError(f"edge type {edge_type}: node ids out of range")
        self._edges[edge_type] = _EdgeStore(
            src_ids, dst_ids, times, self._num_nodes[edge_type.dst]
        )

    # ------------------------------------------------------------------
    # Incremental growth (the ingest delta path)
    # ------------------------------------------------------------------
    def grow_node_type(self, name: str, times: np.ndarray) -> int:
        """Append nodes to an existing type; returns the first new index.

        ``times`` holds one creation timestamp per new node
        (``TIME_MIN`` entries for static rows).  CSR indices of edge
        types *into* the grown type are padded with empty neighbor
        lists — byte-identical to what a cold rebuild at the same
        contents produces, since trailing zero counts cumsum to
        repeated ``indptr`` tails.  Features and ``node_keys`` are the
        caller's to extend (see ``repro.ingest.delta``); the memoized
        fingerprint is cleared.
        """
        if name not in self._num_nodes:
            raise KeyError(f"unknown node type {name!r}")
        times = np.asarray(times, dtype=np.int64)
        start = self._num_nodes[name]
        self._node_times[name] = np.concatenate([self._node_times[name], times])
        self._num_nodes[name] = start + len(times)
        for edge_type, store in self._edges.items():
            if edge_type.dst == name:
                pad = np.full(len(times), store.indptr[-1], dtype=np.int64)
                store.indptr = np.concatenate([store.indptr, pad])
        self._fingerprint = None
        return start

    def append_edges(
        self,
        edge_type: EdgeType,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        times: Optional[np.ndarray] = None,
    ) -> None:
        """Append a batch of edges to an existing edge type.

        The store is replaced with a stably merged one
        (:meth:`_EdgeStore.merged`) that is bit-identical to a cold
        rebuild over the combined edge list; the memoized fingerprint
        is cleared.
        """
        if edge_type not in self._edges:
            raise KeyError(f"unknown edge type {edge_type}")
        src_ids = np.asarray(src_ids, dtype=np.int64)
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if times is None:
            times = np.full(len(src_ids), TIME_MIN, dtype=np.int64)
        times = np.asarray(times, dtype=np.int64)
        if len(src_ids) == 0:
            return
        if (
            src_ids.min() < 0
            or src_ids.max() >= self._num_nodes[edge_type.src]
            or dst_ids.min() < 0
            or dst_ids.max() >= self._num_nodes[edge_type.dst]
        ):
            raise IndexError(f"edge type {edge_type}: node ids out of range")
        self._edges[edge_type] = self._edges[edge_type].merged(
            src_ids, dst_ids, times, self._num_nodes[edge_type.dst]
        )
        self._fingerprint = None

    @classmethod
    def from_parts(
        cls,
        num_nodes: Dict[str, int],
        node_times: Dict[str, np.ndarray],
        edge_stores: Dict[EdgeType, _EdgeStore],
        features: Optional[Dict[str, "NodeFeatures"]] = None,
        node_keys: Optional[Dict[str, np.ndarray]] = None,
    ) -> "HeteroGraph":
        """Assemble a graph directly from prebuilt parts.

        Used by the shared-memory store to materialize a zero-copy view:
        the dicts and arrays are taken as-is, with no validation or
        copying beyond a node-count/timestamp shape check.
        """
        graph = cls.__new__(cls)
        graph._num_nodes = dict(num_nodes)
        graph._node_times = dict(node_times)
        graph._edges = dict(edge_stores)
        graph.features = dict(features or {})
        graph.node_keys = dict(node_keys or {})
        for name, count in graph._num_nodes.items():
            if graph._node_times[name].shape != (count,):
                raise ValueError(f"node type {name!r}: times shape mismatch")
        return graph

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_types(self) -> List[str]:
        """All node type names."""
        return list(self._num_nodes)

    @property
    def edge_types(self) -> List[EdgeType]:
        """All edge types."""
        return list(self._edges)

    def num_nodes(self, node_type: str) -> int:
        """Node count of one type."""
        return self._num_nodes[node_type]

    def total_nodes(self) -> int:
        """Node count over all types."""
        return sum(self._num_nodes.values())

    def num_edges(self, edge_type: EdgeType) -> int:
        """Edge count of one type."""
        return self._edges[edge_type].num_edges

    def total_edges(self) -> int:
        """Edge count over all types."""
        return sum(store.num_edges for store in self._edges.values())

    def node_times(self, node_type: str) -> np.ndarray:
        """Per-node timestamps of one type."""
        return self._node_times[node_type]

    def edges(self, edge_type: EdgeType) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw (src, dst, time) arrays of one edge type.

        For graphs restored from a CSR-only layout (e.g. a shared-memory
        view) the arrays come back in CSR order; see
        :meth:`_EdgeStore.edge_arrays`.
        """
        return self._edges[edge_type].edge_arrays()

    def edge_types_into(self, node_type: str) -> List[EdgeType]:
        """Edge types whose destination is ``node_type``."""
        return [et for et in self._edges if et.dst == node_type]

    def in_degree(self, edge_type: EdgeType) -> np.ndarray:
        """In-degree of destination nodes under one edge type."""
        return self._edges[edge_type].degree()

    def neighbors_before(
        self, edge_type: EdgeType, dst: int, time: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Time-valid incoming neighbors of one node (see :class:`_EdgeStore`)."""
        return self._edges[edge_type].neighbors_before(dst, time)

    def all_neighbors(self, edge_type: EdgeType, dst: int) -> np.ndarray:
        """All incoming neighbors regardless of time (leaky; for ablation)."""
        return self._edges[edge_type].all_neighbors(dst)

    def count_before(self, edge_type: EdgeType, dst: int, time: int) -> int:
        """Time-valid in-degree of one node under one edge type."""
        return self._edges[edge_type].count_before(dst, time)

    def __repr__(self) -> str:
        nodes = ", ".join(f"{t}:{n}" for t, n in self._num_nodes.items())
        return f"HeteroGraph(nodes=[{nodes}], edge_types={len(self._edges)}, edges={self.total_edges()})"

    def summary(self) -> Dict[str, object]:
        """Statistics dict (used by the Table 1 benchmark)."""
        return {
            "node_types": len(self._num_nodes),
            "edge_types": len(self._edges),
            "nodes": self.total_nodes(),
            "edges": self.total_edges(),
            "nodes_by_type": dict(self._num_nodes),
            "edges_by_type": {str(et): store.num_edges for et, store in self._edges.items()},
        }
