"""Multi-process minibatch sampling over a shared-memory graph.

:class:`ParallelSampleLoader` shards the per-batch subgraph sampling
of an epoch across worker processes so that sampling overlaps model
compute: while the trainer runs forward/backward on batch *j*, the
workers are already sampling batches *j+1 … j+window*.

Determinism is inherited from the contract in
:mod:`repro.graph.cache`: every batch's generator seed is derived
from the batch *content* (:func:`~repro.graph.cache.batch_rng_seed`),
so the subgraph a worker produces is bit-identical to the one the
serial path would have produced — regardless of worker count,
scheduling order, chunking, or prefetch depth.  Batches are yielded
strictly in submission order.

Zero-copy IPC
-------------

The graph itself never crosses a pipe.  By default the loader packs it
into a :class:`~repro.graph.shared.SharedGraphStore` — one
shared-memory segment of contiguous CSR/columnar arrays — and forked
workers materialize a read-only view that aliases the segment (with
``shared_graph=False``, or when shared memory is unavailable, workers
fall back to plain fork inheritance, which still shares pages
copy-on-write).  Results travel back as compact per-type index arrays
(:meth:`~repro.graph.sampler.SampledSubgraph.to_arrays`), not pickled
object graphs, and cache-miss batches are dispatched in *chunks* —
about one per worker — so per-task executor overhead is amortized
across the epoch.  Workers are spawned eagerly at construction so the
fork cost lands in setup, not in the first timed epoch.

The segment lifecycle is explicit: :meth:`close` unmaps and unlinks
the store, an ``atexit`` hook covers abandoned loaders, and the
resource-tracker registration made at create time removes the segment
even if the parent is ``kill -9``-ed (see :mod:`repro.graph.shared`).
Workers arm ``PR_SET_PDEATHSIG`` so parent death terminates them too —
otherwise orphaned workers would pin the call-queue pipes (and with
them the resource tracker) open forever.

Any failure to create or use the pool degrades the loader to
in-process sampling with a logged warning and a
``sampler.parallel.fallbacks`` counter — a slow epoch beats a dead
run (the repo-wide resilience posture).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.cache import KEY_PREFIX_LEN, CachedSampler
from repro.graph.hetero import HeteroGraph
from repro.graph.sampler import NeighborSampler, SampledSubgraph
from repro.graph.shared import SharedGraphStore
from repro.obs import get_logger, get_registry
from repro.obs import trace as obs_trace

__all__ = ["ParallelSampleLoader"]

_log = get_logger("graph.parallel")

#: Per-worker state installed by the fork initializer.
_WORKER: Dict[str, object] = {}

#: Upper bound on batches per dispatched chunk; keeps the fallback
#: re-sampling cost of one lost chunk bounded on very long epochs.
_MAX_CHUNK = 32


def _build_sampler(graph: HeteroGraph, spec: Dict[str, object]):
    """Instantiate the sampler implementation named by ``spec``."""
    impl = spec["impl"]
    kwargs = dict(
        graph=graph,
        fanouts=list(spec["fanouts"]),
        rng=np.random.default_rng(0),  # re-seeded per task
        time_respecting=bool(spec["time_respecting"]),
    )
    if impl == "reference":
        return NeighborSampler(**kwargs)
    if impl in ("vectorized", "vectorized-unique"):
        from repro.graph.fast_sampler import VectorizedNeighborSampler

        return VectorizedNeighborSampler(unique=(impl == "vectorized-unique"), **kwargs)
    raise ValueError(f"unknown sampler impl {impl!r}")


def _arm_parent_death_signal(parent_pid: int) -> None:
    """Make this worker die when its parent does (Linux only, best effort).

    Fork-pool workers block reading the call queue; because every
    sibling inherits the queue's write end, they never see EOF when the
    parent is ``kill -9``-ed and would survive as orphans — keeping the
    resource tracker (and the shared-memory segment) alive.
    ``PR_SET_PDEATHSIG`` turns parent death into a ``SIGTERM`` here, so
    the tracker drains and unlinks the segment.
    """
    try:
        import ctypes

        PR_SET_PDEATHSIG = 1
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(PR_SET_PDEATHSIG, int(signal.SIGTERM), 0, 0, 0)
    except Exception:  # noqa: BLE001 - non-Linux or no libc: skip
        return
    if os.getppid() != parent_pid:
        # The parent died in the window before prctl armed: exit now.
        os._exit(1)


def _init_worker(graph_source, spec: Dict[str, object], parent_pid: int) -> None:
    _arm_parent_death_signal(parent_pid)
    if isinstance(graph_source, SharedGraphStore):
        graph = graph_source.graph()
    else:
        graph = graph_source
    _WORKER["sampler"] = _build_sampler(graph, spec)


def _worker_ready() -> bool:
    """Probe task used to spawn and verify workers eagerly."""
    return _WORKER.get("sampler") is not None


def _sample_chunk_task(
    seed_type: str, payload: List[Tuple[np.ndarray, np.ndarray, int]]
) -> List[Dict[str, object]]:
    """Sample a chunk of batches; returns compact array payloads."""
    sampler = _WORKER["sampler"]
    results = []
    for seed_ids, seed_times, rng_seed in payload:
        sampler.rng = np.random.default_rng(rng_seed)
        results.append(sampler.sample(seed_type, seed_ids, seed_times).to_arrays())
    return results


class ParallelSampleLoader:
    """Samples minibatch subgraphs on worker processes, in order.

    Parameters
    ----------
    sampler:
        A :class:`~repro.graph.cache.CachedSampler` (or any sampler,
        which will be wrapped in one).  Its implementation, fanouts,
        base seed, and cache define both the serial fallback path and
        the worker configuration — one source of truth, so the two
        paths cannot drift.
    num_workers:
        Worker processes; ``0`` means sample in-process (the loader
        then only adds cache handling).
    prefetch_batches:
        Extra batches kept in flight beyond the chunked per-worker
        window.  Bounds both memory and speculative work lost to an
        abandoned epoch.
    shared_graph:
        Pack the graph into a shared-memory CSR store for the workers
        (the default).  ``False`` falls back to fork inheritance —
        useful for debugging or on hosts without ``/dev/shm``.
    """

    def __init__(
        self,
        sampler,
        num_workers: int = 0,
        prefetch_batches: int = 2,
        shared_graph: bool = True,
    ) -> None:
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if prefetch_batches < 0:
            raise ValueError(f"prefetch_batches must be >= 0, got {prefetch_batches}")
        if not isinstance(sampler, CachedSampler):
            sampler = CachedSampler(sampler)
        self.sampler = sampler
        self.num_workers = int(num_workers)
        self.prefetch_batches = int(prefetch_batches)
        self.shared_graph = bool(shared_graph)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._store: Optional[SharedGraphStore] = None
        self._spec = {
            "impl": sampler._impl,
            "fanouts": list(sampler.fanouts),
            "time_respecting": sampler.time_respecting,
        }
        if self.num_workers > 0:
            self._executor = self._start_pool()

    # -- pool lifecycle -------------------------------------------------
    def _start_pool(self) -> Optional[ProcessPoolExecutor]:
        graph_source = self.sampler.graph
        store = None
        if self.shared_graph:
            try:
                store = SharedGraphStore.create(self.sampler.graph)
                graph_source = store
            except Exception as err:  # noqa: BLE001 - degrade, don't die
                _log.warning(
                    f"shared graph store unavailable ({type(err).__name__}: {err}); "
                    "workers inherit the graph instead",
                    extra={"num_workers": self.num_workers},
                )
                store = None
        executor = None
        try:
            context = multiprocessing.get_context("fork")
            executor = ProcessPoolExecutor(
                max_workers=self.num_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(graph_source, self._spec, os.getpid()),
            )
            # Spawn + verify the workers now: the fork cost belongs to
            # loader setup, not to the first epoch, and an initializer
            # failure should degrade immediately rather than mid-run.
            probes = [executor.submit(_worker_ready) for _ in range(self.num_workers)]
            for probe in probes:
                if not probe.result(timeout=120):
                    raise RuntimeError("worker initializer left no sampler")
        except Exception as err:  # noqa: BLE001 - degrade, don't die
            self._note_fallback(
                f"worker pool unavailable ({type(err).__name__}: {err}); "
                "sampling in-process"
            )
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
            if store is not None:
                store.cleanup()
            return None
        self._store = store
        return executor

    def _note_fallback(self, message: str) -> None:
        get_registry().counter("sampler.parallel.fallbacks").inc()
        if obs_trace.enabled():
            obs_trace.add_counter("sampler.parallel.fallbacks")
        _log.warning(message, extra={"num_workers": self.num_workers})

    def close(self) -> None:
        """Shut the pool down and release the shared-memory segment.

        The loader stays usable serially.  Waits for workers to exit:
        an abandoned fork pool tears down its pipes at interpreter
        exit and spews ``Bad file descriptor`` tracebacks from the
        atexit hook.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._store is not None:
            self._store.cleanup()
            self._store = None

    def __enter__(self) -> "ParallelSampleLoader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- epoch iteration ------------------------------------------------
    def iter_epoch(
        self,
        seed_type: str,
        seed_ids: np.ndarray,
        seed_times: np.ndarray,
        batches: Sequence[np.ndarray],
    ) -> Iterator[Tuple[np.ndarray, SampledSubgraph]]:
        """Yield ``(batch_indices, subgraph)`` for every batch, in order.

        ``batches`` are index arrays into ``seed_ids``/``seed_times``
        (the trainer's shuffled batch slices).  Cache hits are served
        without touching the pool; misses are grouped into chunks of
        roughly ``len(batches) / num_workers`` (at most ``32``) and
        dispatched up to the prefetch window ahead of consumption,
        with results decoded zero-copy and inserted into the cache as
        they arrive.
        """
        seed_ids = np.asarray(seed_ids, dtype=np.int64)
        seed_times = np.asarray(seed_times, dtype=np.int64)
        batches = list(batches)
        n = len(batches)
        cache = self.sampler.cache
        if self._executor is not None and self.num_workers > 0:
            chunk_size = min(_MAX_CHUNK, max(1, -(-n // self.num_workers)))
        else:
            chunk_size = 1
        window = max(self.num_workers, 1) * chunk_size + self.prefetch_batches
        #: position -> ("hit", subgraph) | ("chunk", record, index-in-chunk)
        state: Dict[int, Tuple] = {}
        #: accumulating chunk of cache misses: (position, key, ids, times)
        pending: List[Tuple[int, bytes, np.ndarray, np.ndarray]] = []
        next_submit = 0

        def flush() -> None:
            nonlocal pending
            if not pending:
                return
            items, pending = pending, []
            if self._executor is None:
                for position, _, ids, times in items:
                    state[position] = ("hit", self.sampler.sample(seed_type, ids, times))
                return
            payload = [
                (ids, times, int.from_bytes(key[KEY_PREFIX_LEN : KEY_PREFIX_LEN + 8], "little"))
                for _, key, ids, times in items
            ]
            try:
                future = self._executor.submit(_sample_chunk_task, seed_type, payload)
            except Exception as err:  # noqa: BLE001 - degrade, don't die
                self._note_fallback(
                    f"chunk dispatch failed ({type(err).__name__}: {err}); "
                    "resampling in-process and retiring the pool"
                )
                self.close()
                for position, _, ids, times in items:
                    state[position] = ("hit", self.sampler.sample(seed_type, ids, times))
                return
            record = {"future": future, "items": items, "results": None}
            for index, (position, _, _, _) in enumerate(items):
                state[position] = ("chunk", record, index)

        def resolve(record: Dict[str, object]) -> None:
            if record["results"] is not None:
                return
            items = record["items"]
            try:
                payloads = record["future"].result()
                if len(payloads) != len(items):
                    raise RuntimeError("worker returned a mis-sized chunk")
                decoded = [SampledSubgraph.from_arrays(p) for p in payloads]
            except Exception as err:  # noqa: BLE001 - degrade, don't die
                self._note_fallback(
                    f"worker chunk failed ({type(err).__name__}: {err}); "
                    "resampling in-process and retiring the pool"
                )
                self.close()
                record["results"] = [
                    self.sampler.sample(seed_type, ids, times)
                    for _, _, ids, times in items
                ]
                return
            if cache is not None:
                for (_, key, _, _), subgraph in zip(items, decoded):
                    cache.put(key, subgraph)
            record["results"] = decoded

        for position in range(n):
            while next_submit < n and next_submit - position < window:
                batch = batches[next_submit]
                ids, times = seed_ids[batch], seed_times[batch]
                if self._executor is None:
                    # Serial path: CachedSampler re-derives the same key.
                    state[next_submit] = ("hit", self.sampler.sample(seed_type, ids, times))
                else:
                    key = self.sampler.batch_key(seed_type, ids, times)
                    hit = cache.get(key) if cache is not None else None
                    if hit is not None:
                        state[next_submit] = ("hit", hit)
                    else:
                        pending.append((next_submit, key, ids, times))
                        if len(pending) >= chunk_size:
                            flush()
                next_submit += 1
            if position not in state:
                flush()

            entry = state.pop(position)
            if entry[0] == "hit":
                subgraph = entry[1]
            else:
                _, record, index = entry
                resolve(record)
                subgraph = record["results"][index]
                if obs_trace.enabled():
                    obs_trace.add_counter("sampler.parallel.batches")
            yield batches[position], subgraph

    # -- seed sharding ---------------------------------------------------
    def sample_shards(
        self,
        seed_type: str,
        seed_ids: np.ndarray,
        seed_times: np.ndarray,
        shard_size: Optional[int] = None,
    ) -> List[SampledSubgraph]:
        """Shard the seed entities contiguously and sample every shard.

        ``shard_size`` defaults to an even split across the workers
        (the whole seed set as one shard when serial).  Each shard is
        one batch under the content-keyed contract, so the result list
        is bit-identical to sampling the same shards serially — this
        is the bulk "seed-sharded" entry point used for whole-split
        scoring and the differential suite.
        """
        seed_ids = np.asarray(seed_ids, dtype=np.int64)
        seed_times = np.asarray(seed_times, dtype=np.int64)
        total = len(seed_ids)
        if total == 0:
            return []
        if shard_size is None:
            shard_size = max(1, -(-total // max(self.num_workers, 1)))
        if shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        batches = [
            np.arange(start, min(start + shard_size, total), dtype=np.int64)
            for start in range(0, total, shard_size)
        ]
        return [
            subgraph
            for _, subgraph in self.iter_epoch(seed_type, seed_ids, seed_times, batches)
        ]

    def sample(
        self, seed_type: str, seed_ids: np.ndarray, seed_times: np.ndarray
    ) -> SampledSubgraph:
        """One-off in-process sample through the shared cache."""
        return self.sampler.sample(seed_type, seed_ids, seed_times)
