"""Multi-process minibatch sampling with bounded prefetch.

:class:`ParallelSampleLoader` shards the per-batch subgraph sampling
of an epoch across worker processes so that sampling overlaps model
compute: while the trainer runs forward/backward on batch *j*, the
workers are already sampling batches *j+1 … j+window*.

Determinism is inherited from the contract in
:mod:`repro.graph.cache`: every batch's generator seed is derived
from the batch *content* (:func:`~repro.graph.cache.batch_rng_seed`),
so the subgraph a worker produces is bit-identical to the one the
serial path would have produced — regardless of worker count,
scheduling order, or prefetch depth.  Batches are yielded strictly in
submission order.

Workers are forked (POSIX) so the graph is shared by inheritance
rather than pickled per task; each task ships only the seed arrays
and an RNG seed.  Any failure to create or use the pool degrades the
loader to in-process sampling with a logged warning and a
``sampler.parallel.fallbacks`` counter — a slow epoch beats a dead
run (the repo-wide resilience posture).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.graph.cache import CachedSampler
from repro.graph.hetero import HeteroGraph
from repro.graph.sampler import NeighborSampler, SampledSubgraph
from repro.obs import get_logger, get_registry
from repro.obs import trace as obs_trace

__all__ = ["ParallelSampleLoader"]

_log = get_logger("graph.parallel")

#: Per-worker state installed by the fork initializer.
_WORKER: Dict[str, object] = {}


def _build_sampler(graph: HeteroGraph, spec: Dict[str, object]):
    """Instantiate the sampler implementation named by ``spec``."""
    impl = spec["impl"]
    kwargs = dict(
        graph=graph,
        fanouts=list(spec["fanouts"]),
        rng=np.random.default_rng(0),  # re-seeded per task
        time_respecting=bool(spec["time_respecting"]),
    )
    if impl == "reference":
        return NeighborSampler(**kwargs)
    if impl in ("vectorized", "vectorized-unique"):
        from repro.graph.fast_sampler import VectorizedNeighborSampler

        return VectorizedNeighborSampler(unique=(impl == "vectorized-unique"), **kwargs)
    raise ValueError(f"unknown sampler impl {impl!r}")


def _init_worker(graph: HeteroGraph, spec: Dict[str, object]) -> None:
    _WORKER["sampler"] = _build_sampler(graph, spec)


def _sample_task(
    seed_type: str, seed_ids: np.ndarray, seed_times: np.ndarray, rng_seed: int
) -> SampledSubgraph:
    sampler = _WORKER["sampler"]
    sampler.rng = np.random.default_rng(rng_seed)
    return sampler.sample(seed_type, seed_ids, seed_times)


class ParallelSampleLoader:
    """Samples minibatch subgraphs on worker processes, in order.

    Parameters
    ----------
    sampler:
        A :class:`~repro.graph.cache.CachedSampler` (or any sampler,
        which will be wrapped in one).  Its implementation, fanouts,
        base seed, and cache define both the serial fallback path and
        the worker configuration — one source of truth, so the two
        paths cannot drift.
    num_workers:
        Worker processes; ``0`` means sample in-process (the loader
        then only adds cache handling).
    prefetch_batches:
        Extra batches kept in flight beyond one per worker.  Bounds
        both memory and speculative work lost to an abandoned epoch.
    """

    def __init__(
        self,
        sampler,
        num_workers: int = 0,
        prefetch_batches: int = 2,
    ) -> None:
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if prefetch_batches < 0:
            raise ValueError(f"prefetch_batches must be >= 0, got {prefetch_batches}")
        if not isinstance(sampler, CachedSampler):
            sampler = CachedSampler(sampler)
        self.sampler = sampler
        self.num_workers = int(num_workers)
        self.prefetch_batches = int(prefetch_batches)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._spec = {
            "impl": sampler._impl,
            "fanouts": list(sampler.fanouts),
            "time_respecting": sampler.time_respecting,
        }
        if self.num_workers > 0:
            self._executor = self._start_pool()

    # -- pool lifecycle -------------------------------------------------
    def _start_pool(self) -> Optional[ProcessPoolExecutor]:
        try:
            context = multiprocessing.get_context("fork")
            executor = ProcessPoolExecutor(
                max_workers=self.num_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self.sampler.graph, self._spec),
            )
        except (ValueError, OSError, RuntimeError) as err:
            self._note_fallback(f"worker pool unavailable ({err}); sampling in-process")
            return None
        return executor

    def _note_fallback(self, message: str) -> None:
        get_registry().counter("sampler.parallel.fallbacks").inc()
        if obs_trace.enabled():
            obs_trace.add_counter("sampler.parallel.fallbacks")
        _log.warning(message, extra={"num_workers": self.num_workers})

    def close(self) -> None:
        """Shut the worker pool down; the loader stays usable serially.

        Waits for workers to exit: an abandoned fork pool tears down
        its pipes at interpreter exit and spews ``Bad file descriptor``
        tracebacks from the atexit hook.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelSampleLoader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- epoch iteration ------------------------------------------------
    def iter_epoch(
        self,
        seed_type: str,
        seed_ids: np.ndarray,
        seed_times: np.ndarray,
        batches: Sequence[np.ndarray],
    ) -> Iterator[Tuple[np.ndarray, SampledSubgraph]]:
        """Yield ``(batch_indices, subgraph)`` for every batch, in order.

        ``batches`` are index arrays into ``seed_ids``/``seed_times``
        (the trainer's shuffled batch slices).  Cache hits are served
        without touching the pool; misses are dispatched up to the
        prefetch window ahead of consumption and inserted into the
        cache as their results arrive.
        """
        seed_ids = np.asarray(seed_ids, dtype=np.int64)
        seed_times = np.asarray(seed_times, dtype=np.int64)
        batches = list(batches)
        cache = self.sampler.cache
        window = max(self.num_workers, 1) + self.prefetch_batches
        #: position -> ("hit", subgraph) | ("future", future, key, ids, times)
        in_flight: Dict[int, Tuple] = {}
        next_submit = 0

        for position in range(len(batches)):
            while next_submit < len(batches) and next_submit - position < window:
                batch = batches[next_submit]
                ids, times = seed_ids[batch], seed_times[batch]
                key = self.sampler.batch_key(seed_type, ids, times)
                hit = cache.get(key) if cache is not None else None
                if hit is not None:
                    in_flight[next_submit] = ("hit", hit)
                elif self._executor is not None:
                    rng_seed = int.from_bytes(key[:8], "little")
                    future = self._executor.submit(
                        _sample_task, seed_type, ids, times, rng_seed
                    )
                    in_flight[next_submit] = ("future", future, key, ids, times)
                else:
                    # Serial path: CachedSampler re-derives the same key.
                    in_flight[next_submit] = ("hit", self.sampler.sample(seed_type, ids, times))
                next_submit += 1

            entry = in_flight.pop(position)
            if entry[0] == "hit":
                subgraph = entry[1]
            else:
                _, future, key, ids, times = entry
                try:
                    subgraph = future.result()
                except Exception as err:  # noqa: BLE001 - degrade, don't die
                    self._note_fallback(
                        f"worker batch failed ({type(err).__name__}: {err}); "
                        "resampling in-process and retiring the pool"
                    )
                    self.close()
                    subgraph = self.sampler.sample(seed_type, ids, times)
                else:
                    if cache is not None:
                        cache.put(key, subgraph)
                if obs_trace.enabled():
                    obs_trace.add_counter("sampler.parallel.batches")
            yield batches[position], subgraph

    def sample(
        self, seed_type: str, seed_ids: np.ndarray, seed_times: np.ndarray
    ) -> SampledSubgraph:
        """One-off in-process sample through the shared cache."""
        return self.sampler.sample(seed_type, seed_ids, seed_times)
