"""Full-snapshot subgraphs: exact (non-sampled) inference.

:func:`snapshot_subgraph` materializes *every* node and edge valid at
one cutoff into a :class:`~repro.graph.sampler.SampledSubgraph`, so a
model forward pass aggregates over complete neighborhoods instead of a
fanout-bounded sample.  Useful when

* the graph is small enough that exactness is cheap,
* sampling variance must be eliminated (e.g. verifying that two
  samplers converge to the same exact prediction), or
* a whole-population scoring pass is wanted at one cutoff.

For large graphs prefer the samplers — cost here is O(nodes + edges)
per call regardless of how many seeds are queried.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.graph.sampler import SampledSubgraph

__all__ = ["snapshot_subgraph"]


def snapshot_subgraph(
    graph: HeteroGraph,
    cutoff: int,
    seed_type: str,
    seed_ids: Sequence[int],
) -> SampledSubgraph:
    """The complete time-valid graph at ``cutoff`` as a subgraph.

    Every node with timestamp ≤ ``cutoff`` (static nodes always) is
    included with exact per-relation degrees; every edge whose
    timestamp and endpoints are valid is included.  ``seed_ids`` must
    all be valid at ``cutoff``.
    """
    cutoff = int(cutoff)
    subgraph = SampledSubgraph(seed_type)
    local_of = {}

    for node_type in graph.node_types:
        valid = graph.node_times(node_type) <= cutoff
        origs = np.flatnonzero(valid)
        mapping = np.full(graph.num_nodes(node_type), -1, dtype=np.int64)
        incoming = graph.edge_types_into(node_type)
        degrees = np.zeros((len(origs), len(incoming)))
        for j, edge_type in enumerate(incoming):
            store = graph._edges[edge_type]
            csum = np.concatenate([[0], np.cumsum(store.nbr_time <= cutoff, dtype=np.int64)])
            degrees[:, j] = csum[store.indptr[origs + 1]] - csum[store.indptr[origs]]
        for position, orig in enumerate(origs.tolist()):
            local, _ = subgraph.add_node(node_type, orig, cutoff)
            mapping[orig] = local
            if incoming:
                subgraph.set_degrees(node_type, local, degrees[position].tolist())
        local_of[node_type] = mapping

    for edge_type in graph.edge_types:
        src_ids, dst_ids, times = graph.edges(edge_type)
        valid = (
            (times <= cutoff)
            & (local_of[edge_type.src][src_ids] >= 0)
            & (local_of[edge_type.dst][dst_ids] >= 0)
        )
        if not valid.any():
            continue
        subgraph.add_edges(
            edge_type,
            local_of[edge_type.src][src_ids[valid]],
            local_of[edge_type.dst][dst_ids[valid]],
        )

    seed_ids = np.asarray(seed_ids, dtype=np.int64)
    seed_locals = local_of[seed_type][seed_ids]
    if (seed_locals < 0).any():
        missing = seed_ids[seed_locals < 0][:3].tolist()
        raise ValueError(f"seeds not valid at cutoff {cutoff}: e.g. {missing}")
    subgraph.seed_locals = seed_locals
    return subgraph
