"""Subgraph memoization and the deterministic sampling contract.

The throughput layer (this module plus
:mod:`repro.graph.parallel`) rests on one invariant:

    **Sampling is a pure function of the batch.**  The subgraph for a
    batch depends only on (sampler implementation, fanouts,
    time-respecting flag, base seed, seed type, seed ids, seed times)
    drawn against the current graph — never on how many batches were
    sampled before it, which worker sampled it, or whether a cache
    served it.

:class:`CachedSampler` enforces the invariant by re-seeding the
wrapped sampler's generator from a content digest before every draw
(:func:`batch_rng_seed`).  Because the draw is pure, a memoized
subgraph is *bit-identical* to a re-sampled one, so the LRU cache and
the parallel loader are semantically invisible: serial, cached, and
multi-worker runs produce the same metrics for a fixed seed.  The
differential test suite (``tests/test_differential_sampling.py``)
locks this in.

The cache key is a 32-byte composite: the 16-byte graph fingerprint
followed by the 16-byte batch digest.  The RNG seed derives from the
batch digest *only* (bytes 16:24 of the key) — deliberately excluding
the fingerprint.  The split is what makes incremental ingest cheap:
after a delta mutates the graph, a retained cache entry whose
subgraph provably cannot see the new rows (no touched node at a
context time that admits them) is *still* bit-identical to a fresh
draw on the new graph, because the draw's RNG stream did not move
with the fingerprint and every CSR prefix it read is unchanged.
:meth:`LRUSubgraphCache.apply_delta` applies exactly that rule,
re-keying survivors under the new fingerprint instead of flushing
the cache wholesale.

:class:`LRUSubgraphCache` memoizes :class:`~repro.graph.sampler.SampledSubgraph`
values across epochs and across train/eval phases, keyed on the same
digest.  Hit/miss/eviction counts are mirrored into the global
:mod:`repro.obs.metrics` registry (``sampler.cache.*``) and, inside a
trace window, onto the current span — so ``--profile`` reports show
cache behavior per stage.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.hetero import TIME_MIN, HeteroGraph
from repro.graph.sampler import SampledSubgraph
from repro.obs import get_registry
from repro.obs import trace as obs_trace

__all__ = [
    "graph_fingerprint",
    "batch_rng_seed",
    "sampler_impl_name",
    "KEY_PREFIX_LEN",
    "LRUSubgraphCache",
    "CachedSampler",
]


def graph_fingerprint(graph: HeteroGraph) -> str:
    """A stable digest of the graph's structure and timestamps.

    Two graphs built from the same database contents share a
    fingerprint; any change to node counts, edges, or timestamps
    changes it.  Computed once per graph instance and memoized, since
    it hashes every edge array.

    The digest covers exactly the CSR layout (``indptr``, ``nbr_src``,
    ``nbr_time``) plus node counts and timestamps — the same arrays a
    :class:`~repro.graph.shared.SharedGraphStore` packs — so a
    shared-memory view of a graph (which carries the precomputed
    fingerprint in its manifest) derives identical content keys, and
    worker-sampled batches stay bit-identical to serial ones.
    """
    cached = getattr(graph, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    for node_type in sorted(graph.node_types):
        digest.update(node_type.encode())
        digest.update(np.int64(graph.num_nodes(node_type)).tobytes())
        digest.update(np.ascontiguousarray(graph.node_times(node_type)).tobytes())
    for edge_type in sorted(graph.edge_types, key=str):
        store = graph._edges[edge_type]
        digest.update(str(edge_type).encode())
        digest.update(np.ascontiguousarray(store.nbr_src).tobytes())
        digest.update(np.ascontiguousarray(store.nbr_time).tobytes())
        digest.update(np.ascontiguousarray(store.indptr).tobytes())
    fingerprint = digest.hexdigest()
    graph._fingerprint = fingerprint
    return fingerprint


def sampler_impl_name(sampler) -> str:
    """Canonical implementation tag for a sampler instance.

    Part of the cache key: the reference and vectorized samplers draw
    differently from the same generator, so their subgraphs must never
    alias.  The vectorized sampler's ``unique`` mode is a third
    distinct draw order.
    """
    name = type(sampler).__name__
    if name == "NeighborSampler":
        return "reference"
    if name == "VectorizedNeighborSampler":
        return "vectorized-unique" if getattr(sampler, "unique", False) else "vectorized"
    return name


def _batch_digest(
    impl: str,
    fanouts,
    time_respecting: bool,
    base_seed: int,
    seed_type: str,
    seed_ids: np.ndarray,
    seed_times: np.ndarray,
) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(impl.encode())
    digest.update(np.asarray(list(fanouts), dtype=np.int64).tobytes())
    digest.update(b"T" if time_respecting else b"F")
    digest.update(np.int64(base_seed).tobytes())
    digest.update(seed_type.encode())
    digest.update(b"\x00")
    digest.update(np.ascontiguousarray(seed_ids, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(seed_times, dtype=np.int64).tobytes())
    return digest.digest()


def batch_rng_seed(
    impl: str,
    fanouts,
    time_respecting: bool,
    base_seed: int,
    seed_type: str,
    seed_ids: np.ndarray,
    seed_times: np.ndarray,
) -> int:
    """The per-batch generator seed under the deterministic contract.

    Shared by :class:`CachedSampler` (serial path) and the parallel
    workers, which is what makes their draws bit-identical.  The graph
    fingerprint is deliberately *not* an input: the RNG stream for a
    batch is stable across graph deltas, so subgraphs whose inputs a
    delta provably did not touch stay valid (see the module
    docstring).
    """
    digest = _batch_digest(
        impl, fanouts, time_respecting, base_seed,
        seed_type, seed_ids, seed_times,
    )
    return int.from_bytes(digest[:8], "little")


#: Byte length of the graph-fingerprint prefix in a composite cache key.
KEY_PREFIX_LEN = 16


class LRUSubgraphCache:
    """Bounded LRU of sampled subgraphs keyed by batch digest.

    Thread-safe: the parallel loader inserts from the main thread
    while trainer code reads, and future work may share one cache
    across loaders.  Counters are mirrored into the global metrics
    registry under ``sampler.cache.{hits,misses,evictions}``.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[bytes, SampledSubgraph]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # reset_stats() moves these baselines instead of zeroing the
        # raw counters, so hits/misses/evictions stay monotonic for
        # concurrent readers (snapshot()) while stats() reports
        # per-owner traffic since the last reset.
        self._hits_base = 0
        self._misses_base = 0
        self._evictions_base = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes) -> Optional[SampledSubgraph]:
        """The cached subgraph for ``key``, refreshed as most recent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                counted = "sampler.cache.misses"
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                counted = "sampler.cache.hits"
        get_registry().counter(counted).inc()
        if obs_trace.enabled():
            obs_trace.add_counter(counted)
        return entry

    def put(self, key: bytes, subgraph: SampledSubgraph) -> None:
        """Insert (or refresh) one entry, evicting the least recent."""
        evicted = 0
        with self._lock:
            self._entries[key] = subgraph
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            get_registry().counter("sampler.cache.evictions").inc(evicted)
            if obs_trace.enabled():
                obs_trace.add_counter("sampler.cache.evictions", evicted)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def apply_delta(
        self,
        old_prefix: bytes,
        new_prefix: bytes,
        touched: Dict[str, np.ndarray],
        min_time: int,
    ) -> Dict[str, int]:
        """Selectively retain entries after an incremental graph delta.

        An entry keyed under ``old_prefix`` (the pre-delta fingerprint)
        survives iff its subgraph contains no node of a touched type
        whose original id is in ``touched[type]`` *and* whose context
        time is ``>= min_time`` — the earliest timestamp the delta
        introduced.  Such a subgraph read only CSR prefixes the delta
        left byte-identical (appended edges land strictly after every
        pre-existing ``(dst, time <= ctx)`` prefix), and since the RNG
        seed excludes the fingerprint, a fresh draw on the new graph
        reproduces it bit-for-bit.  Survivors are re-keyed under
        ``new_prefix`` preserving LRU order; everything else (touched
        entries and entries from other graph versions) is dropped.

        Callers pass ``min_time = TIME_MIN`` when the delta includes
        static rows (visible at every context time) or when the
        sampler is not time-respecting — both make the context-time
        guard vacuous, so only untouched-entity entries survive.

        Returns ``{"retained": n, "invalidated": m}``; the same counts
        land on the ``sampler.cache.{retained,invalidated}`` counters.
        """
        touched = {
            t: np.asarray(ids, dtype=np.int64)
            for t, ids in touched.items()
            if len(ids) > 0
        }
        retained = 0
        invalidated = 0
        with self._lock:
            survivors: "OrderedDict[bytes, SampledSubgraph]" = OrderedDict()
            for key, subgraph in self._entries.items():
                if not key.startswith(old_prefix):
                    invalidated += 1
                    continue
                stale = False
                for node_type, ids in touched.items():
                    orig = subgraph.node_orig(node_type)
                    if len(orig) == 0:
                        continue
                    hit = np.isin(orig, ids)
                    if min_time != TIME_MIN:
                        hit &= subgraph.node_ctx_time(node_type) >= min_time
                    if hit.any():
                        stale = True
                        break
                if stale:
                    invalidated += 1
                else:
                    survivors[new_prefix + key[len(old_prefix):]] = subgraph
                    retained += 1
            self._entries = survivors
        registry = get_registry()
        registry.counter("sampler.cache.retained").inc(retained)
        registry.counter("sampler.cache.invalidated").inc(invalidated)
        return {"retained": retained, "invalidated": invalidated}

    def reset_stats(self) -> None:
        """Rebase the hit/miss/eviction counters, keeping cached entries.

        A warm cache is an asset worth keeping across owners (e.g. a
        reloaded model or a fresh serving instance), but its traffic
        history is not — resetting stops a previous owner's counters
        from leaking into a new owner's reports.  The raw counters are
        never zeroed; the reset only moves the baseline that
        :meth:`stats` subtracts, so :meth:`snapshot` readers (the query
        router estimating hit likelihood mid-run) never observe
        counters going backwards.
        """
        with self._lock:
            self._hits_base = self.hits
            self._misses_base = self.misses
            self._evictions_base = self.evictions

    def stats(self) -> Dict[str, int]:
        """``{hits, misses, evictions, entries, max_entries}`` since the
        last :meth:`reset_stats` (the per-owner view)."""
        with self._lock:
            return {
                "hits": self.hits - self._hits_base,
                "misses": self.misses - self._misses_base,
                "evictions": self.evictions - self._evictions_base,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }

    def snapshot(self) -> Dict[str, int]:
        """Monotonic lifetime counters, unaffected by :meth:`reset_stats`.

        The non-destructive accessor for concurrent readers: routing
        code can poll hit/miss likelihood at any time without racing an
        owner that rebases its reporting window.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }


class CachedSampler:
    """Deterministic (and optionally memoizing) sampler wrapper.

    Wraps a reference or vectorized sampler and re-seeds its generator
    per batch from the content digest, making every draw a pure
    function of the batch (see the module docstring).  With a
    :class:`LRUSubgraphCache` attached, repeated batches — across
    epochs, across train/eval, across ``predict`` calls — are served
    from memory, bit-identically.

    The wrapper mirrors the sampler surface the rest of the system
    touches (``sample``, ``fanouts``, ``num_hops``, ``graph``,
    ``time_respecting``, ``rng``), so it is a drop-in replacement.
    """

    def __init__(
        self,
        base,
        base_seed: int = 0,
        cache: Optional[LRUSubgraphCache] = None,
    ) -> None:
        self.base = base
        self.base_seed = int(base_seed)
        self.cache = cache
        self._fingerprint = graph_fingerprint(base.graph)
        self._impl = sampler_impl_name(base)

    # -- sampler surface ------------------------------------------------
    @property
    def graph(self) -> HeteroGraph:
        return self.base.graph

    @property
    def fanouts(self):
        return self.base.fanouts

    @property
    def num_hops(self) -> int:
        return self.base.num_hops

    @property
    def time_respecting(self) -> bool:
        return self.base.time_respecting

    @property
    def rng(self) -> np.random.Generator:
        # Exposed for checkpointing code that snapshots generator
        # states; under the deterministic contract its position is
        # irrelevant (every sample() call re-seeds it).
        return self.base.rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self.base.rng = value

    # -- keys -----------------------------------------------------------
    def batch_key(self, seed_type: str, seed_ids: np.ndarray, seed_times: np.ndarray) -> bytes:
        """The composite cache key for one batch.

        32 bytes: the 16-byte graph fingerprint (content versioning)
        followed by the 16-byte batch digest (RNG derivation).  See the
        module docstring for why the two halves are kept separate.
        """
        return bytes.fromhex(self._fingerprint) + _batch_digest(
            self._impl, self.base.fanouts,
            self.base.time_respecting, self.base_seed,
            seed_type, seed_ids, seed_times,
        )

    # -- sampling -------------------------------------------------------
    def sample(
        self, seed_type: str, seed_ids: np.ndarray, seed_times: np.ndarray
    ) -> SampledSubgraph:
        """Sample (or recall) the subgraph for one batch."""
        seed_ids = np.asarray(seed_ids, dtype=np.int64)
        seed_times = np.asarray(seed_times, dtype=np.int64)
        key = self.batch_key(seed_type, seed_ids, seed_times)
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return hit
        seed_slice = key[KEY_PREFIX_LEN : KEY_PREFIX_LEN + 8]
        self.base.rng = np.random.default_rng(int.from_bytes(seed_slice, "little"))
        subgraph = self.base.sample(seed_type, seed_ids, seed_times)
        if self.cache is not None:
            self.cache.put(key, subgraph)
        return subgraph

    # -- incremental maintenance ---------------------------------------
    def apply_delta(
        self, touched: Dict[str, np.ndarray], min_event_time: int
    ) -> Dict[str, int]:
        """Refresh the wrapper after an in-place graph delta.

        Recomputes the captured fingerprint from the (mutated) graph
        and selectively retains cache entries via
        :meth:`LRUSubgraphCache.apply_delta`.  ``touched`` maps node
        type → original ids whose rows or incident edges the delta
        changed; ``min_event_time`` is the earliest event timestamp it
        introduced.  A non-time-respecting base sampler reads full
        neighbor lists, so any touched entity invalidates regardless
        of context time (``min_time`` collapses to ``TIME_MIN``).
        """
        old_fingerprint = self._fingerprint
        self._fingerprint = graph_fingerprint(self.base.graph)
        if self.cache is None:
            return {"retained": 0, "invalidated": 0}
        min_time = min_event_time if self.base.time_respecting else TIME_MIN
        return self.cache.apply_delta(
            bytes.fromhex(old_fingerprint),
            bytes.fromhex(self._fingerprint),
            touched,
            min_time,
        )
