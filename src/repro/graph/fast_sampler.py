"""Vectorized time-respecting neighbor sampling.

:class:`VectorizedNeighborSampler` produces the same kind of
:class:`~repro.graph.sampler.SampledSubgraph` as the reference
:class:`~repro.graph.sampler.NeighborSampler`, but batches the
per-node work into numpy kernels:

* time-valid neighbor counts for a whole frontier are computed with
  one ``searchsorted`` per (edge type, node) — no candidate arrays are
  materialized;
* neighbor picks are drawn **with replacement** as vectorized random
  offsets into each node's valid CSR prefix, then deduplicated per
  (edge, destination) pair.

Sampling with replacement is the one semantic difference from the
reference sampler: nodes whose valid degree exceeds the fanout receive
a multiset sample (duplicates dropped), so the expected number of
distinct neighbors is slightly below the fanout.  In exchange, the hot
loop is ~an order of magnitude faster on wide frontiers, which is what
the throughput benchmark measures.

``unique=True`` removes that bias: high-degree nodes draw **without
replacement** (exactly ``fanout`` distinct neighbor positions, like
the reference sampler), vectorized by grouping nodes with equal valid
degree and argpartitioning a matrix of uniform keys.  The cost scales
with the degree values themselves, so the mode is intended for
small-to-moderate degrees; with-replacement stays the default for
wide frontiers.

The temporal-correctness invariant is identical: nothing newer than
the seed time is ever reachable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.hetero import EdgeType, HeteroGraph
from repro.graph.sampler import SampledSubgraph
from repro.obs import trace as obs_trace
from repro.resilience.faults import fault_point

__all__ = ["VectorizedNeighborSampler"]


class VectorizedNeighborSampler:
    """Drop-in faster sampler (see module docstring for semantics)."""

    def __init__(
        self,
        graph: HeteroGraph,
        fanouts: Sequence[int],
        rng: np.random.Generator,
        time_respecting: bool = True,
        unique: bool = False,
    ) -> None:
        if any(f <= 0 for f in fanouts):
            raise ValueError(f"fanouts must be positive, got {list(fanouts)}")
        self.graph = graph
        self.fanouts = list(fanouts)
        self.rng = rng
        self.time_respecting = time_respecting
        #: Exact-fanout mode: draw without replacement on high-degree
        #: nodes (see module docstring for the cost trade-off).
        self.unique = unique
        self._edge_types_into: Dict[str, List[EdgeType]] = {
            node_type: graph.edge_types_into(node_type) for node_type in graph.node_types
        }
        #: (edge type, cutoff) -> cumulative valid-edge counts.  Batches
        #: share a handful of cutoffs, so this converts per-node binary
        #: searches into two gathers.
        self._cum_valid_cache: Dict[Tuple[str, int], np.ndarray] = {}

    @property
    def num_hops(self) -> int:
        """Sampling depth."""
        return len(self.fanouts)

    # ------------------------------------------------------------------
    # Vectorized primitives
    # ------------------------------------------------------------------
    def _cum_valid(self, edge_type: EdgeType, cutoff: int) -> np.ndarray:
        """Prefix sums of the time-valid indicator over one edge store."""
        key = (str(edge_type), int(cutoff))
        cached = self._cum_valid_cache.get(key)
        if cached is None:
            store = self.graph._edges[edge_type]
            cached = np.concatenate(
                [[0], np.cumsum(store.nbr_time <= cutoff, dtype=np.int64)]
            )
            if len(self._cum_valid_cache) > 64:
                self._cum_valid_cache.clear()
            self._cum_valid_cache[key] = cached
        return cached

    def _valid_counts(
        self, edge_type: EdgeType, dsts: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(CSR start offsets, time-valid neighbor count) per dst node.

        Valid neighbors are a prefix of each CSR segment (lists are
        time-sorted), so the count doubles as the sampling range.
        """
        store = self.graph._edges[edge_type]
        starts = store.indptr[dsts]
        stops = store.indptr[dsts + 1]
        if not self.time_respecting:
            return starts, stops - starts
        counts = np.empty(len(dsts), dtype=np.int64)
        for cutoff in np.unique(times):
            mask = times == cutoff
            csum = self._cum_valid(edge_type, int(cutoff))
            counts[mask] = csum[stops[mask]] - csum[starts[mask]]
        return starts, counts

    def sample(
        self,
        seed_type: str,
        seed_ids: np.ndarray,
        seed_times: np.ndarray,
    ) -> SampledSubgraph:
        """Sample the merged subgraph around the seeds."""
        fault_point("sampler.sample")
        seed_ids = np.asarray(seed_ids, dtype=np.int64)
        seed_times = np.asarray(seed_times, dtype=np.int64)
        if seed_ids.shape != seed_times.shape:
            raise ValueError("seed_ids and seed_times must have the same shape")

        subgraph = SampledSubgraph(seed_type)
        # Frontier kept as per-type arrays for vectorized expansion.
        frontier: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

        seed_locals = np.empty(len(seed_ids), dtype=np.int64)
        new_origs, new_times, new_locals = [], [], []
        for i, (orig, time) in enumerate(zip(seed_ids.tolist(), seed_times.tolist())):
            local, is_new = subgraph.add_node(seed_type, orig, time)
            seed_locals[i] = local
            if is_new:
                new_origs.append(orig)
                new_times.append(time)
                new_locals.append(local)
        subgraph.seed_locals = seed_locals
        if new_origs:
            origs = np.asarray(new_origs, dtype=np.int64)
            times = np.asarray(new_times, dtype=np.int64)
            locals_ = np.asarray(new_locals, dtype=np.int64)
            self._record_degrees(subgraph, seed_type, origs, times, locals_)
            frontier[seed_type] = (origs, times, locals_)

        truncations = 0
        for fanout in self.fanouts:
            next_frontier: Dict[str, List[Tuple[int, int, int]]] = {}
            for node_type, (origs, times, locals_) in frontier.items():
                for edge_type in self._edge_types_into[node_type]:
                    truncations += self._expand_edge_type(
                        subgraph, edge_type, origs, times, locals_, fanout, next_frontier
                    )
            frontier = {
                node_type: (
                    np.asarray([o for o, _, _ in entries], dtype=np.int64),
                    np.asarray([t for _, t, _ in entries], dtype=np.int64),
                    np.asarray([l for _, _, l in entries], dtype=np.int64),
                )
                for node_type, entries in next_frontier.items()
                if entries
            }
            for node_type, (origs, times, locals_) in frontier.items():
                self._record_degrees(subgraph, node_type, origs, times, locals_)
        if obs_trace.enabled():
            obs_trace.add_counter("sampler.calls")
            obs_trace.add_counter("sampler.seeds", len(seed_ids))
            obs_trace.add_counter("sampler.nodes_sampled", subgraph.total_nodes())
            obs_trace.add_counter("sampler.edges_sampled", subgraph.total_edges())
            obs_trace.add_counter("sampler.fanout_truncations", truncations)
        return subgraph.finalize()

    def _expand_edge_type(
        self,
        subgraph: SampledSubgraph,
        edge_type: EdgeType,
        dst_origs: np.ndarray,
        ctx_times: np.ndarray,
        dst_locals: np.ndarray,
        fanout: int,
        next_frontier: Dict[str, List[Tuple[int, int, int]]],
    ) -> int:
        """Expand one edge type; returns the fanout-truncated node count."""
        store = self.graph._edges[edge_type]
        starts, counts = self._valid_counts(edge_type, dst_origs, ctx_times)
        has_neighbors = counts > 0
        if not has_neighbors.any():
            return 0
        rows = np.flatnonzero(has_neighbors)
        small = rows[counts[rows] <= fanout]
        large = rows[counts[rows] > fanout]

        # Flat arrays of (neighbor, ctx time, dst local) edge candidates.
        nbr_blocks: List[np.ndarray] = []
        ctx_blocks: List[np.ndarray] = []
        dst_blocks: List[np.ndarray] = []
        # Low-degree nodes: take every valid neighbor (exact, like the
        # reference sampler), gathered with one repeat-based index.
        if len(small):
            lengths = counts[small]
            total = int(lengths.sum())
            if total:
                segment_starts = np.cumsum(lengths) - lengths
                intra = np.arange(total) - np.repeat(segment_starts, lengths)
                flat_index = np.repeat(starts[small], lengths) + intra
                nbr_blocks.append(store.nbr_src[flat_index])
                ctx_blocks.append(np.repeat(ctx_times[small], lengths))
                dst_blocks.append(np.repeat(dst_locals[small], lengths))
        # High-degree nodes: vectorized with-replacement draw.  Exact
        # duplicates of (edge, dst) pairs are acceptable — they only
        # reweight one message slightly — so no per-row dedup pass.
        # Under unique=True, draw without replacement instead: rows are
        # grouped by valid degree so each group becomes one matrix of
        # uniform keys whose smallest `fanout` entries pick distinct
        # neighbor positions.
        if len(large) and self.unique:
            large_counts = counts[large]
            for degree in np.unique(large_counts):
                rows_d = large[large_counts == degree]
                keys = self.rng.random((len(rows_d), int(degree)))
                offsets = np.argpartition(keys, fanout - 1, axis=1)[:, :fanout]
                picks = store.nbr_src[starts[rows_d][:, None] + offsets]
                nbr_blocks.append(picks.reshape(-1))
                ctx_blocks.append(np.repeat(ctx_times[rows_d], fanout))
                dst_blocks.append(np.repeat(dst_locals[rows_d], fanout))
        elif len(large):
            offsets = (
                self.rng.random((len(large), fanout)) * counts[large][:, None]
            ).astype(np.int64)
            picks = store.nbr_src[starts[large][:, None] + offsets]
            nbr_blocks.append(picks.reshape(-1))
            ctx_blocks.append(np.repeat(ctx_times[large], fanout))
            dst_blocks.append(np.repeat(dst_locals[large], fanout))

        nbrs = np.concatenate(nbr_blocks)
        ctxs = np.concatenate(ctx_blocks)
        dsts = np.concatenate(dst_blocks)

        # Bulk interning: python-level work scales with *unique* node
        # instances instead of with edges.  The (node, ctx) pair is
        # packed into one int64 key (ctx values per batch are few).
        ctx_values, ctx_ranks = np.unique(ctxs, return_inverse=True)
        packed = nbrs * len(ctx_values) + ctx_ranks
        unique_keys, first_pos, inverse = np.unique(
            packed, return_index=True, return_inverse=True
        )
        entries = next_frontier.setdefault(edge_type.src, [])
        unique_locals = np.empty(len(unique_keys), dtype=np.int64)
        for i, pos in enumerate(first_pos.tolist()):
            nbr, ctx = int(nbrs[pos]), int(ctxs[pos])
            local, is_new = subgraph.add_node(edge_type.src, nbr, ctx)
            unique_locals[i] = local
            if is_new:
                entries.append((nbr, ctx, local))
        subgraph.add_edges(edge_type, unique_locals[inverse], dsts)
        return len(large)

    def _record_degrees(
        self,
        subgraph: SampledSubgraph,
        node_type: str,
        origs: np.ndarray,
        times: np.ndarray,
        locals_: np.ndarray,
    ) -> None:
        incoming = self._edge_types_into[node_type]
        if not incoming:
            return
        degrees = np.zeros((len(origs), len(incoming)))
        for j, edge_type in enumerate(incoming):
            _, counts = self._valid_counts(edge_type, origs, times)
            degrees[:, j] = counts
        # New nodes of one hop are interned sequentially per type, so
        # the sorted locals form the next contiguous block.
        order = np.argsort(locals_)
        subgraph.set_degrees_block(node_type, locals_[order], degrees[order])
