"""Heterogeneous temporal graphs compiled from relational databases.

The core "databases as graphs" idea: every table becomes a node type,
every row a node, every foreign key an edge type (plus its reverse),
and every time column a timestamp on nodes and edges.

* :mod:`repro.graph.hetero` — the graph data structure (per-edge-type
  CSR with time-sorted neighbor lists);
* :mod:`repro.graph.encoders` — column encoders turning table columns
  into model-ready numeric arrays and categorical codes;
* :mod:`repro.graph.builder` — the DB→graph compiler;
* :mod:`repro.graph.sampler` — time-respecting neighbor sampling;
* :mod:`repro.graph.cache` — subgraph memoization plus the
  deterministic (content-keyed RNG) sampling contract;
* :mod:`repro.graph.shared` — the shared-memory CSR store that lets
  sampler workers view the graph zero-copy;
* :mod:`repro.graph.parallel` — multi-process minibatch sampling with
  bounded prefetch over the shared store.
"""

from repro.graph.hetero import EdgeType, HeteroGraph, TIME_MIN
from repro.graph.encoders import NodeFeatures, encode_table_features
from repro.graph.builder import build_graph
from repro.graph.sampler import NeighborSampler, SampledSubgraph
from repro.graph.fast_sampler import VectorizedNeighborSampler
from repro.graph.snapshot import snapshot_subgraph
from repro.graph.cache import CachedSampler, LRUSubgraphCache, graph_fingerprint
from repro.graph.shared import SharedGraphStore, list_shared_segments
from repro.graph.parallel import ParallelSampleLoader

__all__ = [
    "EdgeType",
    "HeteroGraph",
    "TIME_MIN",
    "NodeFeatures",
    "encode_table_features",
    "build_graph",
    "NeighborSampler",
    "VectorizedNeighborSampler",
    "SampledSubgraph",
    "snapshot_subgraph",
    "CachedSampler",
    "LRUSubgraphCache",
    "graph_fingerprint",
    "SharedGraphStore",
    "list_shared_segments",
    "ParallelSampleLoader",
]
